package trainer

import (
	"testing"
)

// simCost builds a representative global-batch cost report.
func simCost(mode Mode, scale float64) *CostReport {
	c := &CostReport{
		Batch:              2048,
		Mode:               mode,
		EmbLookups:         int64(2048 * 400 * scale),
		EmbActivationBytes: int64(2048 * 400 * 128 * 4 * scale),
		PoolFLOPs:          2048 * 400 * 128 * 50 * scale,
		DenseFLOPs:         2048 * 3e6, // mode-independent
		SDDBytes:           int64(2048 * 400 * 8 * scale),
		EmbOutBytes:        int64(2048 * 20 * 128 * 4 * scale),
		DenseParamBytes:    8 << 20,
	}
	if mode == RecD {
		c.IndexSelectBytes = 2048 * 128 * 4 * 20
		c.PaddedExpandBytes = c.IndexSelectBytes * 10
	}
	return c
}

func TestSimulateIterationBasics(t *testing.T) {
	cluster := DefaultCluster(6)
	rep, err := SimulateIteration(SimInput{
		Cost:                 simCost(Baseline, 1),
		GlobalBatch:          2048,
		EmbParamBytes:        100 << 30,
		DenseStateBytes:      1 << 30,
		UseJaggedIndexSelect: true,
	}, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown.Total() <= 0 {
		t.Fatal("iteration time must be positive")
	}
	if rep.QPS <= 0 {
		t.Fatal("QPS must be positive")
	}
	if rep.PeakMemBytes <= 0 || rep.PeakMemUtilization <= 0 || rep.PeakMemUtilization > 1 {
		t.Fatalf("memory accounting wrong: %+v", rep)
	}
	if rep.AvgMemBytes > rep.PeakMemBytes {
		t.Fatal("average memory cannot exceed peak")
	}
	if rep.AchievedFLOPs <= 0 || rep.AchievedFLOPs > cluster.Device.PeakFLOPs {
		t.Fatalf("achieved flops implausible: %v", rep.AchievedFLOPs)
	}
}

// TestRecDImprovesIteration is the shape of Fig 8: a dedup-factor-4 cost
// report yields lower iteration latency, with the A2A component cut the
// most, and lower memory (Table 2).
func TestRecDImprovesIteration(t *testing.T) {
	cluster := DefaultCluster(6)
	mk := func(c *CostReport) IterationReport {
		rep, err := SimulateIteration(SimInput{
			Cost: c, GlobalBatch: 2048,
			EmbParamBytes: 100 << 30, DenseStateBytes: 1 << 30,
			UseJaggedIndexSelect: true,
		}, cluster)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := mk(simCost(Baseline, 1))
	recd := mk(simCost(RecD, 0.25)) // dedup factor 4

	if recd.Breakdown.Total() >= base.Breakdown.Total() {
		t.Fatalf("RecD iteration not faster: %v vs %v", recd.Breakdown.Total(), base.Breakdown.Total())
	}
	if recd.Breakdown.A2A >= base.Breakdown.A2A {
		t.Fatalf("RecD A2A not smaller: %v vs %v", recd.Breakdown.A2A, base.Breakdown.A2A)
	}
	if recd.PeakMemBytes >= base.PeakMemBytes {
		t.Fatal("RecD peak memory not smaller")
	}
	if recd.QPS <= base.QPS {
		t.Fatal("RecD QPS not higher")
	}
	t.Logf("iteration: baseline %v, recd %v (%.2fx); A2A %v -> %v",
		base.Breakdown.Total(), recd.Breakdown.Total(),
		float64(base.Breakdown.Total())/float64(recd.Breakdown.Total()),
		base.Breakdown.A2A, recd.Breakdown.A2A)
}

// TestJaggedIndexSelectAblation: disabling O6 charges the padded
// expansion and slows the iteration (Fig 9 JIS ablation).
func TestJaggedIndexSelectAblation(t *testing.T) {
	cluster := DefaultCluster(6)
	run := func(jis bool) IterationReport {
		rep, err := SimulateIteration(SimInput{
			Cost: simCost(RecD, 0.25), GlobalBatch: 2048,
			EmbParamBytes: 100 << 30, DenseStateBytes: 1 << 30,
			UseJaggedIndexSelect: jis,
		}, cluster)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with := run(true)
	without := run(false)
	if without.Breakdown.Other <= with.Breakdown.Other {
		t.Fatal("padded expansion should inflate Other time")
	}
	if without.PeakMemBytes <= with.PeakMemBytes {
		t.Fatal("padded expansion should inflate memory")
	}
}

// TestSingleNodeStillBenefits reproduces §6.2 "Single-node Training":
// with NVLink-only communication the A2A term shrinks, but RecD's compute
// and memory savings keep the iteration faster.
func TestSingleNodeStillBenefits(t *testing.T) {
	cluster := DefaultCluster(1)
	run := func(c *CostReport) IterationReport {
		rep, err := SimulateIteration(SimInput{
			Cost: c, GlobalBatch: 2048,
			EmbParamBytes: 10 << 30, DenseStateBytes: 1 << 30,
			UseJaggedIndexSelect: true,
		}, cluster)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(simCost(Baseline, 1))
	recd := run(simCost(RecD, 0.25))
	if recd.Breakdown.Total() >= base.Breakdown.Total() {
		t.Fatal("RecD should still win on a single node")
	}
	multi := DefaultCluster(6)
	baseMulti, err := SimulateIteration(SimInput{
		Cost: simCost(Baseline, 1), GlobalBatch: 2048,
		EmbParamBytes: 10 << 30, DenseStateBytes: 1 << 30,
		UseJaggedIndexSelect: true,
	}, multi)
	if err != nil {
		t.Fatal(err)
	}
	// Single node exposes less A2A than multi-node for the same cost.
	if base.Breakdown.A2A >= baseMulti.Breakdown.A2A {
		t.Fatalf("single-node A2A should be smaller: %v vs %v",
			base.Breakdown.A2A, baseMulti.Breakdown.A2A)
	}
}

func TestSimulateIterationOOM(t *testing.T) {
	cluster := DefaultCluster(1)
	_, err := SimulateIteration(SimInput{
		Cost: simCost(Baseline, 1), GlobalBatch: 2048,
		EmbParamBytes: 10 << 40, // far beyond 8×40GB
	}, cluster)
	if err == nil {
		t.Fatal("expected OOM error")
	}
}

func TestSimulateIterationValidation(t *testing.T) {
	cluster := DefaultCluster(1)
	if _, err := SimulateIteration(SimInput{}, cluster); err == nil {
		t.Fatal("expected error for empty input")
	}
	bad := cluster
	bad.Topology.Nodes = 0
	if _, err := SimulateIteration(SimInput{Cost: simCost(Baseline, 1), GlobalBatch: 1}, bad); err == nil {
		t.Fatal("expected error for bad topology")
	}
}

func TestSimulateTraining(t *testing.T) {
	cluster := DefaultCluster(2)
	costs := []*CostReport{simCost(RecD, 0.25), simCost(RecD, 0.25)}
	rep, err := SimulateTraining(costs, 4096, SimInput{
		EmbParamBytes: 10 << 30, DenseStateBytes: 1 << 30,
		UseJaggedIndexSelect: true,
	}, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QPS <= 0 {
		t.Fatal("expected positive QPS")
	}
	if _, err := SimulateTraining(nil, 1, SimInput{}, cluster); err == nil {
		t.Fatal("expected error for no costs")
	}
}

// TestLargerBatchRaisesQPS captures the paper's batch-size lever: after
// RecD frees memory, batch 6144 raises throughput versus 2048 (Fig 9,
// Table 2) because fixed per-iteration overheads amortize.
func TestLargerBatchRaisesQPS(t *testing.T) {
	cluster := DefaultCluster(6)
	run := func(batch int) IterationReport {
		scale := float64(batch) / 2048 * 0.25
		c := simCost(RecD, scale)
		c.DenseFLOPs = float64(batch) * 3e6
		rep, err := SimulateIteration(SimInput{
			Cost: c, GlobalBatch: batch,
			EmbParamBytes: 100 << 30, DenseStateBytes: 1 << 30,
			UseJaggedIndexSelect: true,
		}, cluster)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small := run(2048)
	big := run(6144)
	if big.QPS <= small.QPS {
		t.Fatalf("larger batch should raise QPS: %v vs %v", big.QPS, small.QPS)
	}
	if big.PeakMemBytes <= small.PeakMemBytes {
		t.Fatal("larger batch should use more memory")
	}
}
