package trainer

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Checkpointing: the "Model Store" box of the paper's Figure 1. Save
// serializes the full model — configuration, every parameter tensor, and
// any Adagrad accumulator state — so training resumes bit-exactly and
// trained models can be published to a blob store (lakefs in this repo).

const checkpointMagic = "RDMD"
const checkpointVersion = 1

func writeU64(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeF32s(w io.Writer, vals []float32) error {
	if err := writeU64(w, uint64(len(vals))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readU64(r byteReaderCk) (uint64, error) { return binary.ReadUvarint(r) }

func readF32s(r byteReaderCk, limit int) ([]float32, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if int(n) > limit {
		return nil, fmt.Errorf("trainer: checkpoint tensor of %d floats exceeds limit %d", n, limit)
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}

func writeStr(w io.Writer, s string) error {
	if err := writeU64(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r byteReaderCk) (string, error) {
	n, err := readU64(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("trainer: checkpoint string of %d bytes", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

type byteReaderCk interface {
	io.Reader
	io.ByteReader
}

// maxCheckpointTensor bounds any single tensor read from a checkpoint.
const maxCheckpointTensor = 1 << 28

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	if err := writeU64(w, checkpointVersion); err != nil {
		return err
	}

	// Configuration.
	cfg := m.cfg
	if err := writeU64(w, uint64(cfg.EmbDim)); err != nil {
		return err
	}
	if err := writeU64(w, uint64(cfg.DenseIn)); err != nil {
		return err
	}
	for _, hidden := range [][]int{cfg.BottomHidden, cfg.TopHidden} {
		if err := writeU64(w, uint64(len(hidden))); err != nil {
			return err
		}
		for _, h := range hidden {
			if err := writeU64(w, uint64(h)); err != nil {
				return err
			}
		}
	}
	if err := writeU64(w, uint64(len(cfg.Features))); err != nil {
		return err
	}
	for _, f := range cfg.Features {
		if err := writeStr(w, f.Key); err != nil {
			return err
		}
		if err := writeU64(w, uint64(f.Pool)); err != nil {
			return err
		}
		if err := writeU64(w, uint64(f.TableRows)); err != nil {
			return err
		}
	}
	if err := writeF32s(w, []float32{cfg.LR}); err != nil {
		return err
	}
	if err := writeU64(w, uint64(cfg.Opt)); err != nil {
		return err
	}
	if err := writeU64(w, uint64(cfg.Seed)); err != nil {
		return err
	}

	// Parameters: MLPs, tables (key-sorted for determinism), attention.
	writeLinear := func(l *Linear) error {
		if err := writeF32s(w, l.W); err != nil {
			return err
		}
		if err := writeF32s(w, l.B); err != nil {
			return err
		}
		if err := writeF32s(w, l.gsqW); err != nil {
			return err
		}
		return writeF32s(w, l.gsqB)
	}
	for _, mlp := range []*MLP{m.bottom, m.top} {
		for _, l := range mlp.Layers {
			if err := writeLinear(l); err != nil {
				return err
			}
		}
	}
	keys := make([]string, 0, len(m.tables))
	for k := range m.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := m.tables[k]
		if err := writeF32s(w, e.W); err != nil {
			return err
		}
		if err := writeF32s(w, e.gsq); err != nil {
			return err
		}
		if a, ok := m.attn[k]; ok {
			for _, t := range [][]float32{a.Wq, a.Wk, a.Wv} {
				if err := writeF32s(w, t); err != nil {
					return err
				}
			}
			if err := writeU64(w, uint64(len(a.gsq))); err != nil {
				return err
			}
			for _, g := range a.gsq {
				if err := writeF32s(w, g); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Load reads a checkpoint written by Save and reconstructs the model.
func Load(r byteReaderCk) (*Model, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("trainer: checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("trainer: bad checkpoint magic %q", magic)
	}
	ver, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("trainer: unsupported checkpoint version %d", ver)
	}

	var cfg Config
	u, err := readU64(r)
	if err != nil {
		return nil, err
	}
	cfg.EmbDim = int(u)
	if u, err = readU64(r); err != nil {
		return nil, err
	}
	cfg.DenseIn = int(u)
	for _, dst := range []*[]int{&cfg.BottomHidden, &cfg.TopHidden} {
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		if n > 64 {
			return nil, fmt.Errorf("trainer: checkpoint has %d hidden layers", n)
		}
		for i := uint64(0); i < n; i++ {
			h, err := readU64(r)
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, int(h))
		}
	}
	nf, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if nf > 1<<16 {
		return nil, fmt.Errorf("trainer: checkpoint has %d features", nf)
	}
	for i := uint64(0); i < nf; i++ {
		var f FeatureConfig
		if f.Key, err = readStr(r); err != nil {
			return nil, err
		}
		if u, err = readU64(r); err != nil {
			return nil, err
		}
		f.Pool = PoolKind(u)
		if u, err = readU64(r); err != nil {
			return nil, err
		}
		f.TableRows = int(u)
		cfg.Features = append(cfg.Features, f)
	}
	lr, err := readF32s(r, 1)
	if err != nil || len(lr) != 1 {
		return nil, fmt.Errorf("trainer: checkpoint LR: %v", err)
	}
	cfg.LR = lr[0]
	if u, err = readU64(r); err != nil {
		return nil, err
	}
	cfg.Opt = Optimizer(u)
	if u, err = readU64(r); err != nil {
		return nil, err
	}
	cfg.Seed = int64(u)

	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("trainer: checkpoint config invalid: %w", err)
	}

	readLinear := func(l *Linear) error {
		w, err := readF32s(r, maxCheckpointTensor)
		if err != nil {
			return err
		}
		if len(w) != len(l.W) {
			return fmt.Errorf("trainer: checkpoint weight size %d, want %d", len(w), len(l.W))
		}
		l.W = w
		b, err := readF32s(r, maxCheckpointTensor)
		if err != nil {
			return err
		}
		if len(b) != len(l.B) {
			return fmt.Errorf("trainer: checkpoint bias size %d, want %d", len(b), len(l.B))
		}
		l.B = b
		if l.gsqW, err = readF32s(r, maxCheckpointTensor); err != nil {
			return err
		}
		if len(l.gsqW) == 0 {
			l.gsqW = nil
		}
		if l.gsqB, err = readF32s(r, maxCheckpointTensor); err != nil {
			return err
		}
		if len(l.gsqB) == 0 {
			l.gsqB = nil
		}
		return nil
	}
	for _, mlp := range []*MLP{m.bottom, m.top} {
		for _, l := range mlp.Layers {
			if err := readLinear(l); err != nil {
				return nil, err
			}
		}
	}
	keys := make([]string, 0, len(m.tables))
	for k := range m.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := m.tables[k]
		w, err := readF32s(r, maxCheckpointTensor)
		if err != nil {
			return nil, err
		}
		if len(w) != len(e.W) {
			return nil, fmt.Errorf("trainer: checkpoint table %q size %d, want %d", k, len(w), len(e.W))
		}
		e.W = w
		if e.gsq, err = readF32s(r, maxCheckpointTensor); err != nil {
			return nil, err
		}
		if len(e.gsq) == 0 {
			e.gsq = nil
		}
		if a, ok := m.attn[k]; ok {
			for _, dst := range []*[]float32{&a.Wq, &a.Wk, &a.Wv} {
				t, err := readF32s(r, maxCheckpointTensor)
				if err != nil {
					return nil, err
				}
				if len(t) != a.Dim*a.Dim {
					return nil, fmt.Errorf("trainer: checkpoint attention %q size %d", k, len(t))
				}
				*dst = t
			}
			ng, err := readU64(r)
			if err != nil {
				return nil, err
			}
			if ng > 3 {
				return nil, fmt.Errorf("trainer: checkpoint attention %q has %d accumulators", k, ng)
			}
			if ng > 0 {
				a.gsq = make([][]float32, ng)
				for i := range a.gsq {
					if a.gsq[i], err = readF32s(r, maxCheckpointTensor); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return m, nil
}
