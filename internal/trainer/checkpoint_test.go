package trainer

import (
	"bytes"
	"testing"

	"repro/internal/lakefs"
)

// TestCheckpointRoundTripPredictions: a saved-and-loaded model produces
// bit-identical predictions.
func TestCheckpointRoundTripPredictions(t *testing.T) {
	batches := makeBatches(t, 20, 32)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Train a little so weights are non-initial.
	for i := 0; i < 3; i++ {
		if _, _, err := m.TrainStep(batches[i%len(batches)], RecD); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	want, err := m.Predict(batches[0], RecD)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Predict(batches[0], RecD)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d differs after checkpoint: %v vs %v", i, want[i], got[i])
		}
	}
}

// TestCheckpointResumesTrainingExactly: continuing training after a
// save/load matches continuing without it, including Adagrad state.
func TestCheckpointResumesTrainingExactly(t *testing.T) {
	batches := makeBatches(t, 20, 32)
	cfg := modelConfig()
	cfg.Opt = Adagrad
	cfg.LR = 0.05

	mA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := mA.TrainStep(batches[i], RecD); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := mA.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mB, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Both continue with the same batch; losses must be identical because
	// the Adagrad accumulators were checkpointed too.
	lossA, _, err := mA.TrainStep(batches[3], RecD)
	if err != nil {
		t.Fatal(err)
	}
	lossB, _, err := mB.TrainStep(batches[3], RecD)
	if err != nil {
		t.Fatal(err)
	}
	if lossA != lossB {
		t.Fatalf("resumed training diverged: %v vs %v", lossA, lossB)
	}
}

// TestCheckpointToModelStore: publish a trained model into the blob store
// (the Figure 1 "Model Store") and load it back.
func TestCheckpointToModelStore(t *testing.T) {
	batches := makeBatches(t, 10, 32)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.TrainStep(batches[0], RecD); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	store := lakefs.NewStore()
	if err := store.Put("models/rm1/epoch-1.ckpt", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	data, err := store.Get("models/rm1/epoch-1.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Config().EmbDim != m.Config().EmbDim {
		t.Fatal("config lost through model store")
	}
}

func TestCheckpointCorruption(t *testing.T) {
	batches := makeBatches(t, 10, 32)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = batches
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := Load(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte(nil), data...)
	bad[4] = 99 // version byte
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected version error")
	}
}
