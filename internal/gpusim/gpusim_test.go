package gpusim

import (
	"testing"
	"time"
)

func TestA100Valid(t *testing.T) {
	if err := A100().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []DeviceSpec{
		{},
		{PeakFLOPs: 1, HBMBandwidth: 1, HBMCapacity: 1, GEMMEfficiency: 0},
		{PeakFLOPs: 1, HBMBandwidth: 1, HBMCapacity: 1, GEMMEfficiency: 1.5},
		{PeakFLOPs: 1, HBMBandwidth: 1, HBMCapacity: 0, GEMMEfficiency: 0.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGEMMTimeScalesWithWork(t *testing.T) {
	d := A100()
	small := d.GEMMTime(1024, 1024, 1024)
	big := d.GEMMTime(2048, 2048, 1024)
	if big <= small {
		t.Fatalf("bigger GEMM not slower: %v vs %v", big, small)
	}
	// 4x the flops → close to 4x the time for compute-bound shapes.
	ratio := float64(big-d.KernelLaunch) / float64(small-d.KernelLaunch)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("compute-bound GEMM ratio %.2f not ≈4", ratio)
	}
}

func TestRooflineMemoryBound(t *testing.T) {
	d := A100()
	// A skinny GEMM is memory-bound: time tracks bytes, not flops.
	skinny := d.GEMMTime(1<<20, 1, 1)
	bytes := 4 * (float64(1<<20) + 1 + float64(1<<20))
	want := d.KernelLaunch + time.Duration(bytes/d.HBMBandwidth*float64(time.Second))
	if skinny < want*9/10 || skinny > want*11/10 {
		t.Fatalf("memory-bound GEMM = %v want ≈%v", skinny, want)
	}
}

func TestEmbLookupLinearInLookups(t *testing.T) {
	d := A100()
	t1 := d.EmbLookupTime(1<<20, 128)
	t2 := d.EmbLookupTime(1<<21, 128)
	ratio := float64(t2-d.KernelLaunch) / float64(t1-d.KernelLaunch)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("lookup time ratio %.2f not ≈2", ratio)
	}
	// Halving lookups via dedup halves EMB time — the paper's O5 claim.
	if t2 <= t1 {
		t.Fatal("more lookups should cost more")
	}
}

func TestMemTracker(t *testing.T) {
	spec := A100()
	m := NewMemTracker(spec)
	if err := m.Alloc(10 << 30); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(20 << 30); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 30<<30 || m.Peak() != 30<<30 {
		t.Fatalf("used=%d peak=%d", m.Used(), m.Peak())
	}
	// Exceeding capacity fails.
	if err := m.Alloc(11 << 30); err == nil {
		t.Fatal("expected OOM")
	}
	m.Free(25 << 30)
	if m.Used() != 5<<30 {
		t.Fatalf("used after free = %d", m.Used())
	}
	if m.Peak() != 30<<30 {
		t.Fatal("peak should persist after free")
	}
	if got := m.PeakUtilization(); got < 0.74 || got > 0.76 {
		t.Fatalf("peak utilization = %v want 0.75", got)
	}
	m.ResetPeak()
	if m.Peak() != m.Used() {
		t.Fatal("ResetPeak should lower peak to current")
	}
	if err := m.Alloc(-1); err == nil {
		t.Fatal("expected error for negative alloc")
	}
	// Over-free clamps at zero.
	m.Free(1 << 40)
	if m.Used() != 0 {
		t.Fatalf("over-free should clamp: %d", m.Used())
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{EMB: 1 * time.Millisecond, GEMM: 2 * time.Millisecond,
		A2A: 3 * time.Millisecond, Other: 4 * time.Millisecond}
	if b.Total() != 10*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	b.Add(Breakdown{EMB: time.Millisecond})
	if b.EMB != 2*time.Millisecond {
		t.Fatalf("Add wrong: %+v", b)
	}
	s := b.Scale(0.5)
	if s.GEMM != time.Millisecond {
		t.Fatalf("Scale wrong: %+v", s)
	}
}

func TestOverlap(t *testing.T) {
	// Fully hidden.
	if got := Overlap(time.Millisecond, 10*time.Millisecond, 1); got != 0 {
		t.Fatalf("fully hidden comm exposed %v", got)
	}
	// Partially hidden.
	if got := Overlap(10*time.Millisecond, 10*time.Millisecond, 0.5); got != 5*time.Millisecond {
		t.Fatalf("half hidden = %v", got)
	}
	// No overlap.
	if got := Overlap(time.Millisecond, time.Hour, 0); got != time.Millisecond {
		t.Fatalf("no overlap = %v", got)
	}
	// Clamping.
	if got := Overlap(time.Millisecond, time.Hour, 5); got != 0 {
		t.Fatal("fraction should clamp to 1")
	}
	if got := Overlap(time.Millisecond, time.Hour, -3); got != time.Millisecond {
		t.Fatal("fraction should clamp to 0")
	}
}
