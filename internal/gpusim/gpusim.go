// Package gpusim is an analytic GPU cost model standing in for the
// paper's A100 trainers (DESIGN.md substitution table). Kernels are timed
// with a roofline: a kernel takes max(flops/peak_flops, bytes/hbm_bw),
// plus a fixed launch overhead. The trainer package counts the exact
// flops, lookup counts, and activation bytes its (real, numeric)
// computation performs, and gpusim converts those counts into the
// iteration-latency and memory-utilization numbers the paper reports
// (Fig 8 breakdown, Table 2 memory/FLOPs efficiency).
package gpusim

import (
	"fmt"
	"time"
)

// DeviceSpec describes one accelerator.
type DeviceSpec struct {
	Name string
	// PeakFLOPs is the dense-math peak in flop/s (TF32-class for A100).
	PeakFLOPs float64
	// GEMMEfficiency derates PeakFLOPs for realistic GEMM shapes.
	GEMMEfficiency float64
	// HBMBandwidth is memory bandwidth in bytes/s.
	HBMBandwidth float64
	// HBMCapacity is device memory in bytes.
	HBMCapacity int64
	// KernelLaunch is the fixed per-kernel overhead.
	KernelLaunch time.Duration
}

// A100 returns an NVIDIA A100-40GB-like spec (ZionEX nodes carry 8 of
// these with 320 GB total HBM and 12.4 TB/s aggregate bandwidth, §6.1 —
// i.e. 40 GB and 1.55 TB/s per GPU).
func A100() DeviceSpec {
	return DeviceSpec{
		Name:           "A100-40GB",
		PeakFLOPs:      156e12, // TF32 with sparsity off
		GEMMEfficiency: 0.55,
		HBMBandwidth:   1.55e12,
		HBMCapacity:    40 << 30,
		KernelLaunch:   4 * time.Microsecond,
	}
}

// Validate checks the spec is usable.
func (d DeviceSpec) Validate() error {
	if d.PeakFLOPs <= 0 || d.HBMBandwidth <= 0 || d.HBMCapacity <= 0 {
		return fmt.Errorf("gpusim: spec %q has non-positive limits", d.Name)
	}
	if d.GEMMEfficiency <= 0 || d.GEMMEfficiency > 1 {
		return fmt.Errorf("gpusim: spec %q efficiency %v out of (0,1]", d.Name, d.GEMMEfficiency)
	}
	return nil
}

// roofline returns max(compute time, memory time) + launch overhead.
func (d DeviceSpec) roofline(flops float64, bytes float64) time.Duration {
	ct := flops / (d.PeakFLOPs * d.GEMMEfficiency)
	mt := bytes / d.HBMBandwidth
	t := ct
	if mt > t {
		t = mt
	}
	return d.KernelLaunch + time.Duration(t*float64(time.Second))
}

// GEMMTime models an M×K by K×N matrix multiply (2MKN flops, streaming
// all three operands once).
func (d DeviceSpec) GEMMTime(m, n, k int) time.Duration {
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	return d.roofline(flops, bytes)
}

// FLOPsTime models a compute-bound kernel of the given flop count.
func (d DeviceSpec) FLOPsTime(flops float64) time.Duration {
	return d.roofline(flops, 0)
}

// EmbLookupTime models embedding-bag gathers: memory-bound, one row read
// plus one output write per lookup (paper §5 "EMB Lookups" — reducing
// lookups reduces required memory bandwidth).
func (d DeviceSpec) EmbLookupTime(lookups, dim int) time.Duration {
	bytes := float64(lookups) * float64(dim) * 4 * 2
	return d.roofline(0, bytes)
}

// MemBoundTime models a bandwidth-bound kernel moving the given bytes
// (index-select, copies, element-wise ops).
func (d DeviceSpec) MemBoundTime(bytes int64) time.Duration {
	return d.roofline(0, float64(bytes))
}

// MemTracker accounts dynamic device memory: current and peak usage
// against capacity. The trainer allocates activation and input buffers
// through it to reproduce Table 2's memory-utilization rows.
type MemTracker struct {
	spec DeviceSpec
	used int64
	peak int64
}

// NewMemTracker builds a tracker for one device.
func NewMemTracker(spec DeviceSpec) *MemTracker {
	return &MemTracker{spec: spec}
}

// Alloc reserves bytes, failing when the device would exceed capacity —
// the paper's baseline RM1 sits at 99.9% of HBM, so exceeding capacity is
// a real failure mode the simulation must expose.
func (m *MemTracker) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpusim: negative alloc %d", bytes)
	}
	if m.used+bytes > m.spec.HBMCapacity {
		return fmt.Errorf("gpusim: OOM on %s: %d used + %d requested > %d capacity",
			m.spec.Name, m.used, bytes, m.spec.HBMCapacity)
	}
	m.used += bytes
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases bytes.
func (m *MemTracker) Free(bytes int64) {
	m.used -= bytes
	if m.used < 0 {
		m.used = 0
	}
}

// Used returns current usage in bytes.
func (m *MemTracker) Used() int64 { return m.used }

// Peak returns the high-water mark in bytes.
func (m *MemTracker) Peak() int64 { return m.peak }

// PeakUtilization returns peak usage as a fraction of capacity.
func (m *MemTracker) PeakUtilization() float64 {
	return float64(m.peak) / float64(m.spec.HBMCapacity)
}

// Utilization returns current usage as a fraction of capacity.
func (m *MemTracker) Utilization() float64 {
	return float64(m.used) / float64(m.spec.HBMCapacity)
}

// ResetPeak lowers the high-water mark to current usage.
func (m *MemTracker) ResetPeak() { m.peak = m.used }
