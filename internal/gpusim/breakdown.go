package gpusim

import "time"

// Breakdown is the Fig 8 iteration-latency decomposition: exposed time per
// category. EMB is lookup/pooling memory time, GEMM is dense math, A2A is
// exposed collective time, Other covers all-reduce, index-select, and
// miscellaneous kernels.
type Breakdown struct {
	EMB   time.Duration
	GEMM  time.Duration
	A2A   time.Duration
	Other time.Duration
}

// Total is the iteration latency.
func (b Breakdown) Total() time.Duration {
	return b.EMB + b.GEMM + b.A2A + b.Other
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.EMB += o.EMB
	b.GEMM += o.GEMM
	b.A2A += o.A2A
	b.Other += o.Other
}

// Scale multiplies every component by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		EMB:   time.Duration(float64(b.EMB) * f),
		GEMM:  time.Duration(float64(b.GEMM) * f),
		A2A:   time.Duration(float64(b.A2A) * f),
		Other: time.Duration(float64(b.Other) * f),
	}
}

// Overlap models compute/communication overlap: a fraction of the raw
// collective time hides under concurrent compute, the rest is exposed
// (the paper reports exposed latency, §6.2). overlappable is the compute
// time the runtime can schedule concurrently with the collective.
func Overlap(comm, overlappable time.Duration, fraction float64) (exposed time.Duration) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	hidden := time.Duration(float64(overlappable) * fraction)
	if hidden >= comm {
		return 0
	}
	return comm - hidden
}
