package reader

import (
	"sync"
	"testing"
	"time"
)

func queueFiles(n int) []string {
	files := make([]string, n)
	for i := range files {
		files[i] = string(rune('a' + i))
	}
	return files
}

// TestScanQueueOrderedMerge: results deposited out of order come back
// from Await strictly in file-index order.
func TestScanQueueOrderedMerge(t *testing.T) {
	q := NewScanQueue(queueFiles(4), 4, nil)
	var idxs []int
	var files []string
	for {
		idx, f, ok := q.Claim()
		if !ok {
			break
		}
		idxs = append(idxs, idx)
		files = append(files, f)
	}
	if len(idxs) != 4 {
		t.Fatalf("claimed %d files, want 4", len(idxs))
	}
	// Deposit in reverse claim order.
	for i := len(idxs) - 1; i >= 0; i-- {
		q.Deposit(idxs[i], FileResult{Keys: []string{files[i]}})
	}
	for i := 0; i < 4; i++ {
		res, ok := q.Await(i)
		if !ok {
			t.Fatalf("Await(%d) aborted", i)
		}
		if res.Keys[0] != files[i] {
			t.Fatalf("Await(%d) returned file %q, want %q", i, res.Keys[0], files[i])
		}
	}
	if _, ok := q.Await(4); ok {
		t.Fatal("Await past the scan set should report done")
	}
}

// TestScanQueueWindowBound: claims beyond base+window block until the
// assembler consumes (or the window grows), bounding decoded-but-unmerged
// files.
func TestScanQueueWindowBound(t *testing.T) {
	q := NewScanQueue(queueFiles(5), 2, nil)
	for i := 0; i < 2; i++ {
		idx, _, ok := q.Claim()
		if !ok || idx != i {
			t.Fatalf("claim %d = (%d, %v)", i, idx, ok)
		}
		q.Deposit(idx, FileResult{})
	}
	claimed := make(chan int, 1)
	go func() {
		idx, _, ok := q.Claim()
		if ok {
			claimed <- idx
		}
		close(claimed)
	}()
	select {
	case idx := <-claimed:
		t.Fatalf("claim %d proceeded past a full window", idx)
	case <-time.After(30 * time.Millisecond):
	}
	if _, ok := q.Await(0); !ok {
		t.Fatal("Await(0) failed")
	}
	select {
	case idx, ok := <-claimed:
		if !ok || idx != 2 {
			t.Fatalf("unblocked claim = (%d, %v), want index 2", idx, ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("claim still blocked after the window slid")
	}

	// Growing the window unblocks a parked claimer too.
	blocked := make(chan int, 1)
	go func() {
		idx, _, ok := q.Claim()
		if ok {
			blocked <- idx
		}
		close(blocked)
	}()
	select {
	case idx := <-blocked:
		t.Fatalf("claim %d proceeded past a full window", idx)
	case <-time.After(30 * time.Millisecond):
	}
	q.SetWindow(4)
	select {
	case idx, ok := <-blocked:
		if !ok || idx != 3 {
			t.Fatalf("post-resize claim = (%d, %v), want index 3", idx, ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("claim still blocked after SetWindow")
	}
}

// TestScanQueueAbort: Abort wakes blocked claimers and awaiters with
// ok == false, and later calls observe the same.
func TestScanQueueAbort(t *testing.T) {
	q := NewScanQueue(queueFiles(3), 1, nil)
	if idx, _, ok := q.Claim(); !ok || idx != 0 {
		t.Fatalf("claim = (%d, %v)", idx, ok)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // blocked claimer (window full)
		defer wg.Done()
		if _, _, ok := q.Claim(); ok {
			t.Error("claim succeeded after abort")
		}
	}()
	go func() { // blocked awaiter (nothing deposited)
		defer wg.Done()
		if _, ok := q.Await(0); ok {
			t.Error("await succeeded after abort")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	q.Abort()
	wg.Wait()
	if _, _, ok := q.Claim(); ok {
		t.Fatal("claim succeeded on an aborted queue")
	}
}

// TestScanQueueStallClock: Await charges blocked time to Stall using the
// injected clock — and only when it actually blocks.
func TestScanQueueStallClock(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	q := NewScanQueue(queueFiles(2), 2, clock)
	idx0, _, _ := q.Claim()
	q.Deposit(idx0, FileResult{})
	if _, ok := q.Await(0); !ok {
		t.Fatal("Await(0) failed")
	}
	if st := q.Stall(); st != 0 {
		t.Fatalf("non-blocking Await charged %v stall", st)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := q.Await(1); !ok {
			t.Error("Await(1) failed")
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the awaiter park and stamp its start
	advance(7 * time.Millisecond)
	idx1, _, _ := q.Claim()
	q.Deposit(idx1, FileResult{})
	<-done
	if st := q.Stall(); st != 7*time.Millisecond {
		t.Fatalf("blocked Await charged %v stall, want 7ms", st)
	}
}

// TestFillQueueStopCheckpoint: a worker whose stop hook fires exits
// between files without claiming further work, and the remaining files
// are still claimable by others.
func TestFillQueueStopCheckpoint(t *testing.T) {
	// A FillQueue against a store is exercised end-to-end by the dpp
	// session tests; here the checkpoint contract alone is pinned via a
	// queue the worker never gets to claim from.
	q := NewScanQueue(queueFiles(3), 3, nil)
	r, err := NewReader(stubStore{}, Spec{Table: "t", BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.FillQueue(t.Context(), q, func() bool { return true })
	if idx, _, ok := q.Claim(); !ok || idx != 0 {
		t.Fatalf("stopped worker consumed a claim: next claim = (%d, %v), want (0, true)", idx, ok)
	}
}

// stubStore satisfies storage.Backend for tests that never fetch.
type stubStore struct{}

func (stubStore) Get(string) ([]byte, error)                     { return nil, nil }
func (stubStore) ReadRange(string, int64, int64) ([]byte, error) { return nil, nil }
func (stubStore) Size(string) (int64, error)                     { return 0, nil }
func (stubStore) List(string) []string                           { return nil }
func (stubStore) Exists(string) bool                             { return false }
