package reader

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// PlanRoundRobin splits a scan set across n workers round-robin, the
// file-level sharding policy the paper's reader tier uses ("the number of
// readers for each job is scaled to meet trainers' ingestion bandwidth
// demands"). Both the legacy Tier and the dpp session planner share it so
// worker assignments stay identical across the two APIs.
func PlanRoundRobin(files []string, n int) [][]string {
	assignments := make([][]string, n)
	for i, f := range files {
		assignments[i%n] = append(assignments[i%n], f)
	}
	return assignments
}

// Tier is a fleet of stateless readers launched for one training job.
//
// Deprecated-in-spirit: Tier predates the dpp service API and is kept as
// a thin adapter during the transition. New code should open a session on
// a dpp.Service, which adds pull-based iteration, per-session
// backpressure, and cancellation on top of the same planning.
type Tier struct {
	store   storage.Backend
	catalog storage.Catalog
	spec    Spec
	n       int
}

// NewTier builds a tier of n readers over one store/catalog.
func NewTier(store storage.Backend, catalog storage.Catalog, spec Spec, n int) (*Tier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("reader: tier needs at least one reader, got %d", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Tier{store: store, catalog: catalog, spec: spec, n: n}, nil
}

// Run scans the spec's whole table with all readers and invokes emit for
// every batch. emit may be called concurrently from different readers and
// must be safe for concurrent use. Cancelling ctx aborts every reader and
// Run returns ctx.Err(). Returns aggregate stats.
func (t *Tier) Run(ctx context.Context, emit func(*Batch) error) (Stats, error) {
	files, err := t.catalog.AllFiles(t.spec.Table)
	if err != nil {
		return Stats{}, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		agg      Stats
		firstErr error
	)
	for _, assigned := range PlanRoundRobin(files, t.n) {
		if len(assigned) == 0 {
			continue
		}
		wg.Add(1)
		go func(files []string) {
			defer wg.Done()
			r, err := NewReader(t.store, t.spec)
			if err == nil {
				err = r.Run(ctx, files, emit)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if r != nil {
				agg.Add(r.Stats())
			}
		}(assigned)
	}
	wg.Wait()
	return agg, firstErr
}

// Collect runs the tier and gathers every batch into a slice, in no
// particular cross-reader order. Convenient for tests and experiments
// that inspect batch contents. Callers that only need the accounting
// should use Drain, which does not hold the whole table in memory.
func (t *Tier) Collect(ctx context.Context) ([]*Batch, Stats, error) {
	var mu sync.Mutex
	var batches []*Batch
	stats, err := t.Run(ctx, func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		batches = append(batches, b)
		return nil
	})
	return batches, stats, err
}

// Drain runs the tier, discards every batch, and returns the aggregate
// stats plus the batch count — the count-only twin of Collect for
// callers that need only the accounting, which previously buffered the
// entire decoded table just to throw it away. (The service-era
// equivalent is core.PipelineConfig.StatsOnly, which streams a dpp
// session and discards batches as they are measured.)
func (t *Tier) Drain(ctx context.Context) (int, Stats, error) {
	var batches int64
	var mu sync.Mutex
	stats, err := t.Run(ctx, func(*Batch) error {
		mu.Lock()
		batches++
		mu.Unlock()
		return nil
	})
	return int(batches), stats, err
}

// ThroughputSamplesPerSec converts stats into the paper's reader metric:
// samples preprocessed per second of reader CPU time.
func ThroughputSamplesPerSec(s Stats) float64 {
	if s.TotalTime() <= 0 {
		return 0
	}
	return float64(s.RowsDecoded) / s.TotalTime().Seconds()
}
