package reader

import (
	"fmt"
	"sync"

	"repro/internal/lakefs"
)

// Tier is a fleet of stateless readers launched for one training job
// (paper §2.1: "the number of readers for each job is scaled to meet
// trainers' ingestion bandwidth demands"). Files are split across readers
// round-robin; each reader runs its own fill→convert→process pipeline
// concurrently.
type Tier struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	spec    Spec
	n       int
}

// NewTier builds a tier of n readers over one store/catalog.
func NewTier(store *lakefs.Store, catalog *lakefs.Catalog, spec Spec, n int) (*Tier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("reader: tier needs at least one reader, got %d", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Tier{store: store, catalog: catalog, spec: spec, n: n}, nil
}

// Run scans the spec's whole table with all readers and invokes emit for
// every batch. emit may be called concurrently from different readers and
// must be safe for concurrent use. Returns aggregate stats.
func (t *Tier) Run(emit func(*Batch) error) (Stats, error) {
	files, err := t.catalog.AllFiles(t.spec.Table)
	if err != nil {
		return Stats{}, err
	}

	assignments := make([][]string, t.n)
	for i, f := range files {
		assignments[i%t.n] = append(assignments[i%t.n], f)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		agg      Stats
		firstErr error
	)
	for i := 0; i < t.n; i++ {
		if len(assignments[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(files []string) {
			defer wg.Done()
			r, err := NewReader(t.store, t.spec)
			if err == nil {
				err = r.Run(files, emit)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if r != nil {
				agg.Add(r.Stats())
			}
		}(assignments[i])
	}
	wg.Wait()
	return agg, firstErr
}

// Collect runs the tier and gathers every batch into a slice, in no
// particular cross-reader order. Convenient for tests and experiments.
func (t *Tier) Collect() ([]*Batch, Stats, error) {
	var mu sync.Mutex
	var batches []*Batch
	stats, err := t.Run(func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		batches = append(batches, b)
		return nil
	})
	return batches, stats, err
}

// ThroughputSamplesPerSec converts stats into the paper's reader metric:
// samples preprocessed per second of reader CPU time.
func ThroughputSamplesPerSec(s Stats) float64 {
	if s.TotalTime() <= 0 {
		return 0
	}
	return float64(s.RowsDecoded) / s.TotalTime().Seconds()
}
