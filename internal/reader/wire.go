package reader

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Wire format for preprocessed batches: what a reader actually ships to a
// trainer over its NIC. Deduplicated tensors serialize in deduplicated
// form, so the encoded size realizes the egress savings the byte
// accounting predicts (Table 3 "Send Bytes"); TestWireBytesMatchEncoding
// pins the two together. The same codec frames batches on the dppnet
// TCP transport, so decoding must fail cleanly — never panic — on
// arbitrary bytes (FuzzDecodeBatch pins that).

const (
	batchMagic = "RBAT"
	statsMagic = "RSTS"
)

// ByteReader is the reader constraint of the wire decoders: any buffered
// byte source (*bytes.Reader, *bufio.Reader). Exported so transports
// like dppnet can name it when composing the codec.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// Encode serializes the batch.
func (b *Batch) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, batchMagic); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(hdr[:], v)
		_, err := w.Write(hdr[:n])
		return err
	}
	if err := put(uint64(b.Size)); err != nil {
		return err
	}
	if err := tensor.WriteDense(w, b.Dense); err != nil {
		return err
	}
	if err := put(uint64(len(b.Labels))); err != nil {
		return err
	}
	labels := make([]byte, 4*len(b.Labels))
	for i, l := range b.Labels {
		binary.LittleEndian.PutUint32(labels[i*4:], math.Float32bits(l))
	}
	if _, err := w.Write(labels); err != nil {
		return err
	}
	hasKJT := uint64(0)
	if b.KJT != nil {
		hasKJT = 1
	}
	if err := put(hasKJT); err != nil {
		return err
	}
	if b.KJT != nil {
		if err := tensor.WriteKJT(w, b.KJT); err != nil {
			return err
		}
	}
	if err := put(uint64(len(b.IKJTs))); err != nil {
		return err
	}
	for _, ik := range b.IKJTs {
		if err := tensor.WriteIKJT(w, ik); err != nil {
			return err
		}
	}
	if err := put(uint64(len(b.Partials))); err != nil {
		return err
	}
	for _, p := range b.Partials {
		if err := tensor.WritePartial(w, p); err != nil {
			return err
		}
	}
	return put(uint64(b.OriginalSparseValues))
}

// DecodeBatch reads a batch encoded by Encode.
func DecodeBatch(r ByteReader) (*Batch, error) {
	magic := make([]byte, len(batchMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("reader: batch magic: %w", err)
	}
	if string(magic) != batchMagic {
		return nil, fmt.Errorf("reader: bad batch magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(r) }

	size, err := get()
	if err != nil {
		return nil, err
	}
	const maxBatch = 1 << 24
	if size > maxBatch {
		return nil, fmt.Errorf("reader: implausible batch size %d", size)
	}
	b := &Batch{Size: int(size)}

	if b.Dense, err = tensor.ReadDense(r); err != nil {
		return nil, err
	}
	nLabels, err := get()
	if err != nil {
		return nil, err
	}
	if nLabels > maxBatch {
		return nil, fmt.Errorf("reader: implausible label count %d", nLabels)
	}
	// Bulk-read the label bytes: a forged count fails fast on truncated
	// input instead of spinning through per-element reads.
	labelBytes := make([]byte, 4*nLabels)
	if _, err := io.ReadFull(r, labelBytes); err != nil {
		return nil, err
	}
	b.Labels = make([]float32, nLabels)
	for i := range b.Labels {
		b.Labels[i] = math.Float32frombits(binary.LittleEndian.Uint32(labelBytes[i*4:]))
	}
	hasKJT, err := get()
	if err != nil {
		return nil, err
	}
	if hasKJT == 1 {
		if b.KJT, err = tensor.ReadKJT(r); err != nil {
			return nil, err
		}
	}
	nIK, err := get()
	if err != nil {
		return nil, err
	}
	if nIK > 1<<16 {
		return nil, fmt.Errorf("reader: implausible IKJT count %d", nIK)
	}
	for i := uint64(0); i < nIK; i++ {
		ik, err := tensor.ReadIKJT(r)
		if err != nil {
			return nil, err
		}
		b.IKJTs = append(b.IKJTs, ik)
	}
	nP, err := get()
	if err != nil {
		return nil, err
	}
	if nP > 1<<16 {
		return nil, fmt.Errorf("reader: implausible partial count %d", nP)
	}
	for i := uint64(0); i < nP; i++ {
		p, err := tensor.ReadPartial(r)
		if err != nil {
			return nil, err
		}
		b.Partials = append(b.Partials, p)
	}
	orig, err := get()
	if err != nil {
		return nil, err
	}
	b.OriginalSparseValues = int(orig)
	return b, b.Validate()
}

// statsFields enumerates every Stats field in wire order: the three
// per-stage times (nanoseconds) followed by the six deterministic work
// counters. All are non-negative by construction, so they serialize as
// uvarints.
func statsFields(s *Stats) [9]*int64 {
	return [9]*int64{
		(*int64)(&s.FillTime), (*int64)(&s.ConvertTime), (*int64)(&s.ProcessTime),
		&s.ReadBytes, &s.SentBytes,
		&s.RowsDecoded, &s.BatchesProduced, &s.ConvertValues, &s.ProcessOps,
	}
}

// Encode serializes the stats — the trailing accounting frame a dppnet
// server ships after a remote session's final batch, so a trainer on the
// other side of the wire sees the same Stats a local session reports.
func (s Stats) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, statsMagic); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	for _, f := range statsFields(&s) {
		n := binary.PutUvarint(hdr[:], uint64(*f))
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeStats reads stats encoded by Stats.Encode.
func DecodeStats(r ByteReader) (Stats, error) {
	magic := make([]byte, len(statsMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return Stats{}, fmt.Errorf("reader: stats magic: %w", err)
	}
	if string(magic) != statsMagic {
		return Stats{}, fmt.Errorf("reader: bad stats magic %q", magic)
	}
	var s Stats
	for _, f := range statsFields(&s) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return Stats{}, err
		}
		if v > 1<<62 {
			return Stats{}, fmt.Errorf("reader: implausible stats counter %d", v)
		}
		*f = int64(v)
	}
	return s, nil
}
