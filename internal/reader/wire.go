package reader

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Wire format for preprocessed batches: what a reader actually ships to a
// trainer over its NIC. Deduplicated tensors serialize in deduplicated
// form, so the encoded size realizes the egress savings the byte
// accounting predicts (Table 3 "Send Bytes"); TestWireBytesMatchEncoding
// pins the two together.

const batchMagic = "RBAT"

// byteReader is the reader constraint of the tensor wire decoders.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// Encode serializes the batch.
func (b *Batch) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, batchMagic); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(hdr[:], v)
		_, err := w.Write(hdr[:n])
		return err
	}
	if err := put(uint64(b.Size)); err != nil {
		return err
	}
	if err := tensor.WriteDense(w, b.Dense); err != nil {
		return err
	}
	if err := put(uint64(len(b.Labels))); err != nil {
		return err
	}
	for _, l := range b.Labels {
		if err := binary.Write(w, binary.LittleEndian, l); err != nil {
			return err
		}
	}
	hasKJT := uint64(0)
	if b.KJT != nil {
		hasKJT = 1
	}
	if err := put(hasKJT); err != nil {
		return err
	}
	if b.KJT != nil {
		if err := tensor.WriteKJT(w, b.KJT); err != nil {
			return err
		}
	}
	if err := put(uint64(len(b.IKJTs))); err != nil {
		return err
	}
	for _, ik := range b.IKJTs {
		if err := tensor.WriteIKJT(w, ik); err != nil {
			return err
		}
	}
	if err := put(uint64(len(b.Partials))); err != nil {
		return err
	}
	for _, p := range b.Partials {
		if err := tensor.WritePartial(w, p); err != nil {
			return err
		}
	}
	return put(uint64(b.OriginalSparseValues))
}

// DecodeBatch reads a batch encoded by Encode.
func DecodeBatch(r byteReader) (*Batch, error) {
	magic := make([]byte, len(batchMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("reader: batch magic: %w", err)
	}
	if string(magic) != batchMagic {
		return nil, fmt.Errorf("reader: bad batch magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(r) }

	size, err := get()
	if err != nil {
		return nil, err
	}
	const maxBatch = 1 << 24
	if size > maxBatch {
		return nil, fmt.Errorf("reader: implausible batch size %d", size)
	}
	b := &Batch{Size: int(size)}

	if b.Dense, err = tensor.ReadDense(r); err != nil {
		return nil, err
	}
	nLabels, err := get()
	if err != nil {
		return nil, err
	}
	if nLabels > maxBatch {
		return nil, fmt.Errorf("reader: implausible label count %d", nLabels)
	}
	b.Labels = make([]float32, nLabels)
	for i := range b.Labels {
		if err := binary.Read(r, binary.LittleEndian, &b.Labels[i]); err != nil {
			return nil, err
		}
	}
	hasKJT, err := get()
	if err != nil {
		return nil, err
	}
	if hasKJT == 1 {
		if b.KJT, err = tensor.ReadKJT(r); err != nil {
			return nil, err
		}
	}
	nIK, err := get()
	if err != nil {
		return nil, err
	}
	if nIK > 1<<16 {
		return nil, fmt.Errorf("reader: implausible IKJT count %d", nIK)
	}
	for i := uint64(0); i < nIK; i++ {
		ik, err := tensor.ReadIKJT(r)
		if err != nil {
			return nil, err
		}
		b.IKJTs = append(b.IKJTs, ik)
	}
	nP, err := get()
	if err != nil {
		return nil, err
	}
	if nP > 1<<16 {
		return nil, fmt.Errorf("reader: implausible partial count %d", nP)
	}
	for i := uint64(0); i < nP; i++ {
		p, err := tensor.ReadPartial(r)
		if err != nil {
			return nil, err
		}
		b.Partials = append(b.Partials, p)
	}
	orig, err := get()
	if err != nil {
		return nil, err
	}
	b.OriginalSparseValues = int(orig)
	return b, b.Validate()
}
