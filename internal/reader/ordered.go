package reader

import (
	"sync"
	"time"
)

// OrderedMerge is the deposit-by-index merge discipline shared by
// ScanQueue (a resizable worker pool filling one file list) and the
// sharded fleet multiplexer (dppshard, N remote shards each producing a
// deterministic subset of one file list): producers complete slots in
// any order and any interleaving, a single consumer awaits them
// strictly in index order, and a sliding window over the consumer's
// position bounds how far producers may run ahead — the memory bound
// and the backpressure channel in one mechanism.
//
// Producers acquire indices one of two ways. Claim hands out the next
// unclaimed index (ScanQueue's shape: interchangeable workers pulling
// from a shared frontier). WaitWindow blocks until a caller-chosen
// index enters the window (dppshard's shape: each producer's index
// sequence is fixed by routing, so there is nothing to claim — only
// backpressure to obey). Both respect the same window, so a consumer
// paired with either kind of producer holds at most window slots of
// undelivered results.
//
// All methods are safe for concurrent use.
type OrderedMerge[T any] struct {
	n int // slot count; indices are [0, n)
	// now stamps blocking intervals for the consumer-starvation counter;
	// injectable so controller tests can run on a manual clock.
	now func() time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	next    int // next index Claim will hand out
	base    int // next index Await will deliver
	window  int // producers may hold indices in [base, base+window)
	results map[int]T
	aborted bool
	// open marks the merge open-ended: reaching the slot count is not the
	// end of the stream, only the end of what has landed so far. Claim,
	// WaitWindow, and Await park there until Extend adds slots or Finish
	// closes the merge. This is the reader half of a Follow session: the
	// file plan grows while the scan runs.
	open bool

	stall time.Duration // completed time Await spent blocked on missing deposits
	// awaitSince is nonzero while Await is currently blocked; Stall folds
	// the live interval in so a controller watching a wedged merge sees
	// the starvation grow, not a frozen counter.
	awaitSince time.Time
}

// NewOrderedMerge builds a merge over n slots with the given window
// (clamped to at least 1). A nil now falls back to time.Now.
func NewOrderedMerge[T any](n, window int, now func() time.Time) *OrderedMerge[T] {
	if window < 1 {
		window = 1
	}
	if now == nil {
		now = time.Now
	}
	m := &OrderedMerge[T]{n: n, now: now, window: window, results: make(map[int]T)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// NewOpenOrderedMerge builds an open-ended merge: the initial n slots
// are only a prefix, and producers/consumer park at the end of the known
// slots instead of finishing, until Extend appends more or Finish
// declares the set complete.
func NewOpenOrderedMerge[T any](n, window int, now func() time.Time) *OrderedMerge[T] {
	m := NewOrderedMerge[T](n, window, now)
	m.open = true
	return m
}

// Len reports the current slot count (under Extend it grows; read it as
// "slots known so far" on an open merge).
func (m *OrderedMerge[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Pos reports the consumer's position: the next index Await will
// deliver. Len() - Pos() is the backlog of slots not yet merged — on a
// tailing scan, the landing-to-consumer lag.
func (m *OrderedMerge[T]) Pos() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base
}

// Extend appends k slots to an open merge, waking producers and the
// consumer parked at the old end. Returns the new slot count. Calling
// Extend after Finish (or on a merge built closed) is a programmer
// error but harmless: the slots are appended and consumed normally.
func (m *OrderedMerge[T]) Extend(k int) int {
	m.mu.Lock()
	m.n += k
	n := m.n
	m.mu.Unlock()
	m.cond.Broadcast()
	return n
}

// Finish closes an open merge: no further Extend is coming, so parked
// producers and the consumer run out the remaining slots and then get
// the ordinary end-of-set ok=false. Idempotent.
func (m *OrderedMerge[T]) Finish() {
	m.mu.Lock()
	m.open = false
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Claim hands the caller the next unclaimed index, blocking while the
// window is full. ok is false once the indices are exhausted or the
// merge is aborted; a caller that gets ok must eventually Deposit that
// index (claims are never reassigned, so an abandoned claim would wedge
// the consumer).
func (m *OrderedMerge[T]) Claim() (idx int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			return 0, false
		}
		if m.next >= m.n {
			if !m.open {
				return 0, false
			}
			m.cond.Wait() // open merge: park for Extend or Finish
			continue
		}
		if m.next < m.base+m.window {
			idx = m.next
			m.next++
			return idx, true
		}
		m.cond.Wait()
	}
}

// WaitWindow blocks until idx is inside the claim window — the
// backpressure gate for producers whose index sequence is fixed in
// advance rather than claimed. Returns false when the merge aborts or
// idx is out of range; true means the producer may fill the slot now.
// Indices at or behind the consumer's position are immediately
// admissible (their window check is vacuous).
func (m *OrderedMerge[T]) WaitWindow(idx int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			return false
		}
		if idx >= m.n {
			if !m.open {
				return false
			}
			m.cond.Wait() // open merge: park for Extend or Finish
			continue
		}
		if idx < m.base+m.window {
			return true
		}
		m.cond.Wait()
	}
}

// Deposit publishes a completed slot and wakes the consumer.
func (m *OrderedMerge[T]) Deposit(idx int, v T) {
	m.mu.Lock()
	m.results[idx] = v
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Await returns slot results strictly in index order: the call pattern
// is Await(0), Await(1), ... Each call blocks until that index has been
// deposited; ok is false when the merge is aborted or idx is past the
// slot count. Time spent blocked accumulates into Stall — the
// producer-starvation signal autoscaling consumes.
func (m *OrderedMerge[T]) Await(idx int) (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var blockedAt time.Time
	settle := func() {
		if !blockedAt.IsZero() {
			m.stall += m.now().Sub(blockedAt)
			m.awaitSince = time.Time{}
			blockedAt = time.Time{}
		}
	}
	for {
		if m.aborted {
			settle()
			var zero T
			return zero, false
		}
		if idx >= m.n {
			if !m.open {
				settle()
				var zero T
				return zero, false
			}
			// Tail wait on an open merge: nothing has landed at idx yet.
			// That is landing lag, not producer starvation — it must not
			// feed the Stall counter the autoscaler reads, or a quiet
			// landing path would look like a starved worker pool.
			settle()
			m.cond.Wait()
			continue
		}
		if r, have := m.results[idx]; have {
			settle()
			delete(m.results, idx)
			m.base = idx + 1
			m.cond.Broadcast() // the window slid forward
			return r, true
		}
		if blockedAt.IsZero() {
			blockedAt = m.now()
			m.awaitSince = blockedAt
		}
		m.cond.Wait()
	}
}

// SetWindow resizes the window (clamped to at least 1), waking
// producers the wider window unblocks. Shrinking never revokes claims
// already handed out.
func (m *OrderedMerge[T]) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	m.mu.Lock()
	m.window = n
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Abort wakes every blocked Claim, WaitWindow, and Await with
// ok == false. Idempotent; called on teardown and after the consumer
// finishes, so producers parked on a full window never outlive the
// merge.
func (m *OrderedMerge[T]) Abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Stall returns the accumulated time Await spent blocked waiting for
// deposits — including an in-progress block — the "consumer starved for
// producers" half of the autoscaling signal (the other half, waiting on
// the downstream consumer, is measured where batches are handed off).
func (m *OrderedMerge[T]) Stall() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stall
	if !m.awaitSince.IsZero() {
		st += m.now().Sub(m.awaitSince)
	}
	return st
}
