package reader

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// fullSpec exercises every conversion path at once: plain KJT features,
// two dedup groups, a partial feature, and transforms over all three.
func fullSpec() Spec {
	return Spec{
		Table:          "tbl",
		BatchSize:      64,
		SparseFeatures: []string{"item_0"},
		DedupSparseFeatures: [][]string{
			{"user_seq_0", "user_seq_1"},
			{"user_elem_0", "user_elem_1", "user_elem_2"},
		},
		PartialDedupFeatures: []string{"item_1"},
		SparseTransforms: []SparseTransform{
			HashMod{Features: []string{"user_seq_0", "item_0", "item_1"}, TableSize: 1 << 20},
		},
	}
}

// counters extracts the deterministic Stats fields (everything except the
// wall-clock stage times, which legitimately differ between serial and
// pipelined execution).
func counters(s Stats) [6]int64 {
	return [6]int64{s.ReadBytes, s.SentBytes, s.RowsDecoded, s.BatchesProduced, s.ConvertValues, s.ProcessOps}
}

func encodeBatches(t *testing.T, batches []*Batch) [][]byte {
	t.Helper()
	out := make([][]byte, len(batches))
	for i, b := range batches {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// TestPipelinedRunMatchesSerial is the determinism contract of the reader
// pipeline: with prefetching fill and parallel per-group conversion, Run
// must emit byte-identical batches in the same order, with identical
// deterministic Stats counters, as the serial reference path. Run with
// -race this also shakes out data races in the pipeline.
func TestPipelinedRunMatchesSerial(t *testing.T) {
	env := newTestEnv(t, 60, true)

	serialSpec := fullSpec()
	batchesSerial, statsSerial := runAll(t, env, serialSpec)

	for _, cfg := range []struct {
		name                      string
		fillAhead, convertWorkers int
	}{
		{"fill-ahead only", 4, 0},
		{"convert workers only", 0, 4},
		{"full pipeline", 4, 4},
		{"more workers than tasks", 8, 16},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			spec := fullSpec()
			spec.FillAhead = cfg.fillAhead
			spec.ConvertWorkers = cfg.convertWorkers
			batches, stats := runAll(t, env, spec)

			if len(batches) != len(batchesSerial) {
				t.Fatalf("pipelined produced %d batches, serial %d", len(batches), len(batchesSerial))
			}
			wantEnc := encodeBatches(t, batchesSerial)
			gotEnc := encodeBatches(t, batches)
			for i := range wantEnc {
				if !bytes.Equal(gotEnc[i], wantEnc[i]) {
					t.Fatalf("batch %d differs between pipelined and serial paths", i)
				}
			}
			if got, want := counters(stats), counters(statsSerial); got != want {
				t.Fatalf("stats counters differ: pipelined %v serial %v", got, want)
			}
		})
	}
}

// TestPipelinedEmitErrorAborts mirrors TestEmitErrorAborts for the
// pipelined path: an emit error must abort promptly and not leak the fill
// goroutine (the -race build would flag a leaked goroutine still writing
// fill stats while the test reads them).
func TestPipelinedEmitErrorAborts(t *testing.T) {
	env := newTestEnv(t, 20, true)
	spec := baseSpec()
	spec.FillAhead = 2
	spec.ConvertWorkers = 2
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	wantErr := fmt.Errorf("stop")
	calls := 0
	err = r.Run(context.Background(), files, func(b *Batch) error {
		calls++
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v want %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error", calls)
	}
	if r.Stats().BatchesProduced != 1 {
		t.Fatalf("BatchesProduced = %d want 1", r.Stats().BatchesProduced)
	}
}

// TestPipelinedUnknownFeature checks error propagation out of parallel
// convert tasks.
func TestPipelinedUnknownFeature(t *testing.T) {
	env := newTestEnv(t, 5, true)
	spec := baseSpec()
	spec.DedupSparseFeatures = append(spec.DedupSparseFeatures, []string{"not_a_feature"})
	spec.FillAhead = 2
	spec.ConvertWorkers = 4
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	if err := r.Run(context.Background(), files, func(*Batch) error { return nil }); err == nil {
		t.Fatal("expected error for unknown feature")
	}
}

// TestSpecValidatePipelineFields rejects negative worker counts.
func TestSpecValidatePipelineFields(t *testing.T) {
	spec := baseSpec()
	spec.FillAhead = -1
	if err := spec.Validate(); err == nil {
		t.Fatal("expected error for negative FillAhead")
	}
	spec = baseSpec()
	spec.ConvertWorkers = -2
	if err := spec.Validate(); err == nil {
		t.Fatal("expected error for negative ConvertWorkers")
	}
}

// BenchmarkReaderSerialVsPipelined reports both paths side by side over
// the same table.
func benchReaderRun(b *testing.B, fillAhead, convertWorkers int) {
	env := newTestEnv(b, 100, true)
	spec := baseSpec()
	spec.FillAhead = fillAhead
	spec.ConvertWorkers = convertWorkers
	files, _ := env.catalog.AllFiles("tbl")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(env.store, spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(context.Background(), files, func(*Batch) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderRunSerial(b *testing.B)    { benchReaderRun(b, 0, 0) }
func BenchmarkReaderRunPipelined(b *testing.B) { benchReaderRun(b, 4, 4) }
