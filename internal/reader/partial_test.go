package reader

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/tensor"
)

// partialSpec consumes the shift-heavy sequence features as partial IKJTs.
func partialSpec() Spec {
	return Spec{
		Table:                "tbl",
		BatchSize:            64,
		SparseFeatures:       []string{"item_0", "item_1", "user_elem_0", "user_elem_1", "user_elem_2"},
		PartialDedupFeatures: []string{"user_seq_0", "user_seq_1"},
	}
}

func TestPartialSpecValidate(t *testing.T) {
	if err := partialSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	s := partialSpec()
	s.SparseFeatures = append(s.SparseFeatures, "user_seq_0") // duplicate
	if err := s.Validate(); err == nil {
		t.Fatal("expected duplicate error")
	}
	s = partialSpec()
	if !s.IsPartial("user_seq_0") || s.IsPartial("item_0") {
		t.Fatal("IsPartial wrong")
	}
	got := s.ConsumedFeatures()
	if got[len(got)-1] != "user_seq_1" {
		t.Fatalf("ConsumedFeatures order: %v", got)
	}
}

// TestPartialBatchesEncodeExactData: expanding partial IKJTs reproduces
// the original rows exactly (§7: "Partial IKJTs... encode each row's
// [offset, length]").
func TestPartialBatchesEncodeExactData(t *testing.T) {
	env := newTestEnv(t, 30, true)
	spec := partialSpec()
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	row := 0
	if err := r.Run(context.Background(), files, func(b *Batch) error {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(b.Partials) != 2 {
			t.Fatalf("batch has %d partials want 2", len(b.Partials))
		}
		for _, key := range spec.PartialDedupFeatures {
			fi, _ := env.schema.FeatureIndex(key)
			j, ok := b.Feature(key)
			if !ok {
				t.Fatalf("missing feature %q", key)
			}
			for i := 0; i < b.Size; i++ {
				want := env.samples[row+i].Sparse[fi]
				got := j.Row(i)
				if len(got) != len(want) {
					t.Fatalf("%q row %d: len %d want %d", key, row+i, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("%q row %d value %d mismatch", key, row+i, k)
					}
				}
			}
		}
		row += b.Size
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if row != len(env.samples) {
		t.Fatalf("processed %d rows want %d", row, len(env.samples))
	}
}

// TestPartialBeatsExactOnShiftedFeatures: for frequently-shifting
// sequence features, partial dedup carries fewer wire bytes than exact
// IKJT dedup, which itself beats plain KJTs. The test builds a dedicated
// shift-heavy table (ChangeProb 0.5) because rarely-changing features
// make partial ≈ exact (its [offset,length] lookup is slightly bigger).
func TestPartialBeatsExactOnShiftedFeatures(t *testing.T) {
	specs := []datagen.FeatureSpec{
		{Key: "shift_a", Class: datagen.UserFeature, ChangeProb: 0.5,
			MeanLen: 32, MaxLen: 64, Update: datagen.ShiftAppend, Cardinality: 1 << 30},
		{Key: "shift_b", Class: datagen.UserFeature, ChangeProb: 0.5,
			MeanLen: 32, MaxLen: 64, Update: datagen.ShiftAppend, Cardinality: 1 << 30},
		{Key: "item", Class: datagen.ItemFeature, ChangeProb: 0.95,
			MeanLen: 2, MaxLen: 4, Update: datagen.Resample, Cardinality: 1 << 20},
	}
	schema, err := datagen.NewSchema(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 50, MeanSamplesPerSession: 10, Seed: 77,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		t.Fatal(err)
	}
	env := &testEnv{store: store, catalog: catalog, schema: schema, samples: samples}
	seqs := []string{"shift_a", "shift_b"}
	rest := []string{"item"}

	run := func(spec Spec) int64 {
		r, err := NewReader(env.store, spec)
		if err != nil {
			t.Fatal(err)
		}
		files, _ := env.catalog.AllFiles("tbl")
		if err := r.Run(context.Background(), files, func(*Batch) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return r.Stats().SentBytes
	}

	kjtBytes := run(Spec{Table: "tbl", BatchSize: 64,
		SparseFeatures: append(append([]string(nil), rest...), seqs...)})
	exactBytes := run(Spec{Table: "tbl", BatchSize: 64,
		SparseFeatures: rest, DedupSparseFeatures: [][]string{seqs}})
	partialBytes := run(Spec{Table: "tbl", BatchSize: 64,
		SparseFeatures: rest, PartialDedupFeatures: seqs})

	if exactBytes >= kjtBytes {
		t.Fatalf("exact IKJT %d should beat KJT %d", exactBytes, kjtBytes)
	}
	if partialBytes >= exactBytes {
		t.Fatalf("partial %d should beat exact %d on shifted features", partialBytes, exactBytes)
	}
	t.Logf("sent bytes: kjt %d, exact %d, partial %d", kjtBytes, exactBytes, partialBytes)
}

// TestPartialTransforms: element-wise transforms run once over the shared
// buffer and match the full-batch result; non-element-wise transforms are
// rejected.
func TestPartialTransforms(t *testing.T) {
	env := newTestEnv(t, 30, true)
	files, _ := env.catalog.AllFiles("tbl")

	spec := partialSpec()
	spec.SparseTransforms = []SparseTransform{
		HashMod{Features: []string{"user_seq_0"}, TableSize: 1 << 16},
	}
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same transform over the plain KJT path.
	refSpec := Spec{Table: "tbl", BatchSize: 64,
		SparseFeatures: append([]string{"user_seq_0", "user_seq_1"}, spec.SparseFeatures...),
		SparseTransforms: []SparseTransform{
			HashMod{Features: []string{"user_seq_0"}, TableSize: 1 << 16},
		}}
	rr, err := NewReader(env.store, refSpec)
	if err != nil {
		t.Fatal(err)
	}
	var got, want []tensor.Jagged
	if err := r.Run(context.Background(), files, func(b *Batch) error {
		j, _ := b.Feature("user_seq_0")
		got = append(got, j)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rr.Run(context.Background(), files, func(b *Batch) error {
		j, _ := b.Feature("user_seq_0")
		want = append(want, j)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("batch %d: partial-path transform differs from KJT path", i)
		}
	}
	// Partial path does far fewer transform ops.
	if r.Stats().ProcessOps >= rr.Stats().ProcessOps {
		t.Fatalf("partial transform ops %d should be below KJT's %d",
			r.Stats().ProcessOps, rr.Stats().ProcessOps)
	}

	// Truncate reshapes rows and must be rejected on partial features.
	badSpec := partialSpec()
	badSpec.SparseTransforms = []SparseTransform{
		Truncate{Features: []string{"user_seq_0"}, MaxLen: 4},
	}
	rb, err := NewReader(env.store, badSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Run(context.Background(), files, func(*Batch) error { return nil }); err == nil {
		t.Fatal("expected error for non-element-wise transform on partial feature")
	}
}

// TestPartialTrainerConsumption: a model can train on batches whose
// sequence features arrive as partial IKJTs (they expand at the feature
// boundary).
func TestPartialTrainerConsumption(t *testing.T) {
	env := newTestEnv(t, 20, true)
	spec := partialSpec()
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	var batches []*Batch
	if err := r.Run(context.Background(), files, func(b *Batch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Expanding a partial feature and re-deduplicating exactly loses
	// nothing: sanity-check one batch's round trip.
	j, _ := batches[0].Feature("user_seq_0")
	p := tensor.PartialDedup("user_seq_0", j)
	if !p.ToJagged().Equal(j) {
		t.Fatal("partial round trip failed")
	}
}
