package reader

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatch hammers the batch wire decoder with arbitrary bytes.
// The decoder guards a network boundary (dppnet frames batches with it),
// so the contract is: any input either decodes into a batch that passes
// Validate and round-trips through Encode, or fails with an error —
// never a panic, an unbounded allocation, or a silent half-decode. The
// seed corpus is real encoded batches (the wire_test fixtures' shape)
// plus their truncations and a corrupted-magic variant.
func FuzzDecodeBatch(f *testing.F) {
	env := newTestEnv(f, 25, true)
	spec := baseSpec()
	spec.PartialDedupFeatures = []string{"user_elem_0"}
	spec.DedupSparseFeatures = [][]string{{"user_seq_0", "user_seq_1"}}
	spec.SparseFeatures = []string{"item_0", "item_1", "user_elem_1", "user_elem_2"}
	r, err := NewReader(env.store, spec)
	if err != nil {
		f.Fatal(err)
	}
	files, _ := env.catalog.AllFiles(spec.Table)
	seeded := 0
	if err := r.Run(f.Context(), files, func(b *Batch) error {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			return err
		}
		enc := buf.Bytes()
		f.Add(enc)
		if seeded == 0 {
			f.Add(enc[:len(enc)/2]) // truncated mid-payload
			f.Add(enc[:3])          // truncated inside the magic
			bad := append([]byte(nil), enc...)
			bad[0] = 'X' // corrupted magic
			f.Add(bad)
		}
		seeded++
		return nil
	}); err != nil {
		f.Fatal(err)
	}
	if seeded == 0 {
		f.Fatal("no seed batches produced")
	}
	// A handful of tiny batches too: small seeds mutate and minimize far
	// faster than the ~20KB realistic fixtures, so the engine gets real
	// exec throughput alongside the full-shape corpus.
	tiny := baseSpec()
	tiny.BatchSize = 8
	tiny.SparseFeatures = []string{"item_0"}
	tiny.DedupSparseFeatures = [][]string{{"user_seq_0"}}
	tr, err := NewReader(env.store, tiny)
	if err != nil {
		f.Fatal(err)
	}
	tinySeeds := 0
	if err := tr.Run(f.Context(), files[:1], func(b *Batch) error {
		if tinySeeds < 2 {
			var buf bytes.Buffer
			if err := b.Encode(&buf); err != nil {
				return err
			}
			f.Add(buf.Bytes())
			tinySeeds++
		}
		return nil
	}); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(bytes.NewReader(data))
		if err != nil {
			return // malformed input must fail cleanly, and did
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("decode accepted an invalid batch: %v", err)
		}
		// A decoded batch must survive the codec round trip: re-encoding
		// and re-decoding cannot fail on data the decoder itself accepted.
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		if _, err := DecodeBatch(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
	})
}

// FuzzSpecFingerprint probes the cache-key soundness of
// Spec.Fingerprint under arbitrary feature names and parameters: the
// fingerprint must be deterministic, must separate specs that differ in
// an output-determining field (batch size, feature list shape, transform
// parameters), and must never let adversarial feature names (embedded
// quotes, separators) collapse two different feature lists into one key
// — a collision here would let dpp.ScanCache serve one job's batches to
// a differently-specced job.
func FuzzSpecFingerprint(f *testing.F) {
	f.Add("tbl", 64, "item_0", "user_seq_0", int64(1<<20))
	f.Add("t", 1, `a"b`, `a" "b`, int64(7))  // quote injection
	f.Add("t", 48, "x;st=[", "y]", int64(0)) // separator injection
	f.Add("", 0, "", "", int64(-1))          // degenerate everything
	f.Add("t", 2, "f1,f2", "f1", int64(1))   // comma vs split names
	f.Fuzz(func(t *testing.T, table string, batch int, feat1, feat2 string, param int64) {
		spec := Spec{
			Table:               table,
			BatchSize:           batch,
			SparseFeatures:      []string{feat1},
			DedupSparseFeatures: [][]string{{feat2}},
			SparseTransforms: []SparseTransform{
				HashMod{Features: []string{feat1}, TableSize: param},
			},
		}
		fp := spec.Fingerprint()
		if fp != spec.Fingerprint() {
			t.Fatal("fingerprint is not deterministic")
		}

		// Output-determining mutations must change the key.
		mutBatch := spec
		mutBatch.BatchSize++
		if mutBatch.Fingerprint() == fp {
			t.Fatal("batch-size change did not change the fingerprint")
		}
		mutParam := spec
		mutParam.SparseTransforms = []SparseTransform{
			HashMod{Features: []string{feat1}, TableSize: param + 1},
		}
		if mutParam.Fingerprint() == fp {
			t.Fatal("transform-parameter change did not change the fingerprint")
		}
		// Moving a feature between the KJT list and a dedup group changes
		// the batch's tensor layout, so it must change the key even
		// though the consumed-feature set is unchanged.
		mutShape := spec
		mutShape.SparseFeatures = nil
		mutShape.DedupSparseFeatures = [][]string{{feat2}, {feat1}}
		if mutShape.Fingerprint() == fp {
			t.Fatal("feature-placement change did not change the fingerprint")
		}
		// Splitting one feature name into two (or vice versa) must not
		// collide: %q quoting has to keep list structure unambiguous.
		joined := Spec{Table: table, BatchSize: batch,
			SparseFeatures: []string{feat1 + "," + feat2}}
		split := Spec{Table: table, BatchSize: batch,
			SparseFeatures: []string{feat1, feat2}}
		if joined.Fingerprint() == split.Fingerprint() {
			t.Fatalf("feature lists %q and %q collide", joined.SparseFeatures, split.SparseFeatures)
		}

		// Scheduling knobs and the table name are documented non-keys:
		// they cannot change output, so they must not fragment the cache.
		mutSched := spec
		mutSched.FillAhead += 3
		mutSched.ConvertWorkers += 2
		mutSched.Table += "_other"
		if mutSched.Fingerprint() != fp {
			t.Fatal("scheduling knobs or table name leaked into the fingerprint")
		}
	})
}
