package reader

import (
	"math"

	"repro/internal/tensor"
)

// SparseTransform is a preprocessing module over a sparse feature's jagged
// values — the stand-in for the user-provided TorchScript modules of
// paper §4.3. Apply must treat its input as immutable and return a new
// Jagged with the same row structure unless it explicitly reshapes rows
// (e.g. truncation).
//
// Cost reports the number of value operations Apply performs, so the
// deduplicated-preprocessing saving (O4) is measurable deterministically:
// a transform applied to an IKJT runs over the deduplicated values slice
// only.
type SparseTransform interface {
	Name() string
	Keys() []string
	Apply(j tensor.Jagged) tensor.Jagged
	Cost(values int) int64
	// ElementWise reports whether Apply is a pure per-value map (no row
	// reshaping). Only element-wise transforms may target partial IKJTs,
	// whose rows alias overlapping windows of one shared buffer.
	ElementWise() bool
}

// HashMod remaps IDs into a table of the given size via a multiplicative
// hash — the paper's "hashing" preprocessing example.
type HashMod struct {
	Features  []string
	TableSize int64
}

// Name implements SparseTransform.
func (h HashMod) Name() string { return "hash_mod" }

// Keys implements SparseTransform.
func (h HashMod) Keys() []string { return h.Features }

// Apply hashes every ID into [0, TableSize).
func (h HashMod) Apply(j tensor.Jagged) tensor.Jagged {
	out := j.Clone()
	for i, v := range out.Values {
		x := uint64(v) * 0x9E3779B97F4A7C15
		x ^= x >> 29
		out.Values[i] = int64(x % uint64(h.TableSize))
	}
	return out
}

// Cost implements SparseTransform: one op per value.
func (h HashMod) Cost(values int) int64 { return int64(values) }

// ElementWise implements SparseTransform.
func (h HashMod) ElementWise() bool { return true }

// Clamp limits IDs to [Min, Max].
type Clamp struct {
	Features []string
	Min, Max int64
}

// Name implements SparseTransform.
func (c Clamp) Name() string { return "clamp" }

// Keys implements SparseTransform.
func (c Clamp) Keys() []string { return c.Features }

// Apply clamps every ID.
func (c Clamp) Apply(j tensor.Jagged) tensor.Jagged {
	out := j.Clone()
	for i, v := range out.Values {
		if v < c.Min {
			out.Values[i] = c.Min
		} else if v > c.Max {
			out.Values[i] = c.Max
		}
	}
	return out
}

// Cost implements SparseTransform: one op per value.
func (c Clamp) Cost(values int) int64 { return int64(values) }

// ElementWise implements SparseTransform.
func (c Clamp) ElementWise() bool { return true }

// Truncate keeps at most MaxLen trailing IDs per row (sequence windows
// keep the most recent interactions).
type Truncate struct {
	Features []string
	MaxLen   int
}

// Name implements SparseTransform.
func (t Truncate) Name() string { return "truncate" }

// Keys implements SparseTransform.
func (t Truncate) Keys() []string { return t.Features }

// Apply truncates each row to its last MaxLen elements.
func (t Truncate) Apply(j tensor.Jagged) tensor.Jagged {
	rows := make([][]tensor.Value, j.Rows())
	for i := 0; i < j.Rows(); i++ {
		r := j.Row(i)
		if len(r) > t.MaxLen {
			r = r[len(r)-t.MaxLen:]
		}
		rows[i] = append([]tensor.Value(nil), r...)
	}
	return tensor.NewJagged(rows)
}

// Cost implements SparseTransform: one op per value scanned.
func (t Truncate) Cost(values int) int64 { return int64(values) }

// ElementWise implements SparseTransform: truncation reshapes rows.
func (t Truncate) ElementWise() bool { return false }

// DenseTransform preprocesses the dense feature matrix in place.
type DenseTransform interface {
	Name() string
	Apply(d tensor.Dense)
}

// LogNormalize applies sign-preserving log1p scaling, a common dense
// normalization.
type LogNormalize struct{}

// Name implements DenseTransform.
func (LogNormalize) Name() string { return "log_normalize" }

// Apply rescales every element to sign(x)·log1p(|x|).
func (LogNormalize) Apply(d tensor.Dense) {
	for i, v := range d.Data {
		if v >= 0 {
			d.Data[i] = float32(math.Log1p(float64(v)))
		} else {
			d.Data[i] = float32(-math.Log1p(float64(-v)))
		}
	}
}
