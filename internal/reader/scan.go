package reader

import (
	"context"

	"repro/internal/datagen"
)

// FileScan is the file-aligned unit of work the cross-session scan cache
// (dpp.ScanCache) shares between sessions: every complete batch that can
// be cut from one file's rows alone, plus the leftover tail rows that
// must carry into the next file of a multi-file scan.
//
// A FileScan is immutable once built. Its Batches and Tail may be handed
// to any number of concurrent consumers; batches never alias reader
// scratch (the dedup tables are reset, not shared), and conversion copies
// row data, so consumers of cached batches and holders of Tail rows never
// observe each other.
type FileScan struct {
	// Batches are the complete batches cut from the file's rows, in row
	// order. When a scan enters the file with no pending rows, these are
	// byte-identical to the batches an uncached serial Run would emit
	// while inside the file.
	Batches []*Batch
	// Tail holds the rows after the last complete batch (always fewer
	// than the spec's batch size). A multi-file scan carries them into
	// the next file; the final file's tail becomes the short last batch.
	Tail []datagen.Sample
	// Keys and Dense describe the file's schema (sparse feature names
	// and dense-feature width), needed to convert carried tail rows.
	Keys  []string
	Dense int
}

// MemBytes estimates the resident size of the scan for cache-budget
// accounting: encoded batch bytes plus the tail rows' feature payloads
// and per-row bookkeeping. An estimate is sufficient — the cache budget
// bounds order-of-magnitude memory, not exact allocation.
func (fs *FileScan) MemBytes() int64 {
	var total int64
	for _, b := range fs.Batches {
		total += int64(b.WireBytes())
	}
	for i := range fs.Tail {
		total += sampleMemBytes(&fs.Tail[i])
	}
	return total
}

// sampleMemBytes estimates one decoded row's resident footprint: struct
// header, slice headers, and the sparse/dense payloads.
func sampleMemBytes(s *datagen.Sample) int64 {
	const structOverhead = 88 // 4 int64s, label, 3 slice headers
	total := int64(structOverhead) + 4*int64(len(s.Dense))
	for _, row := range s.Sparse {
		total += 24 + 8*int64(len(row))
	}
	return total
}

// ScanFile fills one file and cuts its rows into complete batches,
// returning them with the leftover tail. All stages charge the reader's
// Stats exactly as Run does, so a scan assembled from ScanFile calls
// (plus ProduceBatch for carried rows) reports the same deterministic
// counters as a serial Run over the same files.
//
// This is the compute function behind dpp.ScanCache entries: the result
// depends only on (file contents, Spec.Fingerprint()), which is what
// makes memoizing it sound.
func (r *Reader) ScanFile(ctx context.Context, file string) (*FileScan, error) {
	samples, keys, dense, err := r.fill(ctx, file)
	if err != nil {
		return nil, err
	}
	fs := &FileScan{Keys: keys, Dense: dense}
	for len(samples) >= r.spec.BatchSize {
		b, err := r.ProduceBatch(samples[:r.spec.BatchSize], keys, dense)
		if err != nil {
			return nil, err
		}
		fs.Batches = append(fs.Batches, b)
		samples = samples[r.spec.BatchSize:]
	}
	fs.Tail = samples
	return fs, nil
}

// FillFile runs only the fill stage over one file: fetch, decrypt-
// decompress simulation, and DWRF decode, returning the decoded rows and
// the file schema. The shared-scan path uses it when a scan enters a file
// with carried rows — batch boundaries then depend on the carry, so the
// file's batches cannot be shared, but its decode still can be skipped by
// a storage-layer cache underneath.
func (r *Reader) FillFile(ctx context.Context, file string) ([]datagen.Sample, []string, int, error) {
	return r.fill(ctx, file)
}

// BatchSize reports the spec's rows-per-batch, letting scan composers cut
// carried rows without re-deriving the spec.
func (r *Reader) BatchSize() int { return r.spec.BatchSize }
