package reader

import (
	"bytes"
	"context"
	"testing"
)

func collectBatches(t *testing.T, env *testEnv, spec Spec) []*Batch {
	t.Helper()
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles(spec.Table)
	var batches []*Batch
	if err := r.Run(context.Background(), files, func(b *Batch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return batches
}

func TestBatchWireRoundTrip(t *testing.T) {
	env := newTestEnv(t, 25, true)
	spec := baseSpec()
	spec.DedupSparseFeatures = [][]string{{"user_seq_0", "user_seq_1"}}
	spec.PartialDedupFeatures = []string{"user_elem_0"}
	spec.SparseFeatures = []string{"item_0", "item_1", "user_elem_1", "user_elem_2"}

	for _, b := range collectBatches(t, env, spec) {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBatch(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Size != b.Size || len(got.Labels) != len(b.Labels) {
			t.Fatalf("shape mismatch after round trip")
		}
		for i := range b.Labels {
			if got.Labels[i] != b.Labels[i] {
				t.Fatal("labels differ")
			}
		}
		for _, key := range spec.ConsumedFeatures() {
			want, _ := b.Feature(key)
			have, ok := got.Feature(key)
			if !ok || !have.Equal(want) {
				t.Fatalf("feature %q differs after round trip", key)
			}
		}
		if got.OriginalSparseValues != b.OriginalSparseValues {
			t.Fatal("original value count differs")
		}
	}
}

// TestWireBytesMatchEncoding pins the analytic WireBytes accounting to the
// real encoded size: they must agree within the small framing overhead
// (magic, tags, varint lengths).
func TestWireBytesMatchEncoding(t *testing.T) {
	env := newTestEnv(t, 40, true)
	for _, b := range collectBatches(t, env, baseSpec()) {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		analytic := float64(b.WireBytes())
		actual := float64(buf.Len())
		if actual < analytic*0.9 || actual > analytic*1.15 {
			t.Fatalf("encoded %v bytes vs analytic %v (off by >15%%)", actual, analytic)
		}
	}
}

// TestWireDedupSavingsReal: the encoded dedup batches are genuinely
// smaller on the wire than the same data as plain KJTs.
func TestWireDedupSavingsReal(t *testing.T) {
	env := newTestEnv(t, 40, true)

	encoded := func(spec Spec) int {
		total := 0
		for _, b := range collectBatches(t, env, spec) {
			var buf bytes.Buffer
			if err := b.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			total += buf.Len()
		}
		return total
	}

	dedup := baseSpec()
	kjt := dedup
	kjt.DedupSparseFeatures = nil
	kjt.SparseFeatures = dedup.ConsumedFeatures()

	d, k := encoded(dedup), encoded(kjt)
	if d >= k {
		t.Fatalf("encoded dedup batches %d not smaller than KJT %d", d, k)
	}
	t.Logf("encoded bytes: kjt %d, ikjt %d (%.2fx)", k, d, float64(k)/float64(d))
}

func TestDecodeBatchErrors(t *testing.T) {
	if _, err := DecodeBatch(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := DecodeBatch(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
	// Truncated payloads fail cleanly.
	env := newTestEnv(t, 10, true)
	b := collectBatches(t, env, baseSpec())[0]
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, buf.Len() / 2, buf.Len() - 1} {
		if _, err := DecodeBatch(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
