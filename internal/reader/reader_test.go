package reader

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/tensor"
)

// testEnv lands one clustered partition of synthetic data and returns the
// store/catalog plus the schema and raw samples.
type testEnv struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	schema  *datagen.Schema
	samples []datagen.Sample
}

func newTestEnv(t testing.TB, sessions int, clustered bool) *testEnv {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 6, Seed: 99,
	})
	samples := gen.GeneratePartition()
	if clustered {
		samples = etl.ClusterBySession(samples)
	}
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 256, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{store: store, catalog: catalog, schema: schema, samples: samples}
}

func baseSpec() Spec {
	return Spec{
		Table:          "tbl",
		BatchSize:      64,
		SparseFeatures: []string{"item_0", "item_1"},
		DedupSparseFeatures: [][]string{
			{"user_seq_0", "user_seq_1"},
			{"user_elem_0", "user_elem_1", "user_elem_2"},
		},
	}
}

func runAll(t *testing.T, env *testEnv, spec Spec) ([]*Batch, Stats) {
	t.Helper()
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, err := env.catalog.AllFiles(spec.Table)
	if err != nil {
		t.Fatal(err)
	}
	var batches []*Batch
	if err := r.Run(context.Background(), files, func(b *Batch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return batches, r.Stats()
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", baseSpec(), true},
		{"no table", Spec{BatchSize: 1}, false},
		{"zero batch", Spec{Table: "t"}, false},
		{"dup across lists", Spec{Table: "t", BatchSize: 1,
			SparseFeatures:      []string{"a"},
			DedupSparseFeatures: [][]string{{"a"}}}, false},
		{"dup within group", Spec{Table: "t", BatchSize: 1,
			DedupSparseFeatures: [][]string{{"a", "a"}}}, false},
		{"empty group", Spec{Table: "t", BatchSize: 1,
			DedupSparseFeatures: [][]string{{}}}, false},
		{"transform on unconsumed", Spec{Table: "t", BatchSize: 1,
			SparseFeatures:   []string{"a"},
			SparseTransforms: []SparseTransform{Clamp{Features: []string{"zzz"}}}}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDedupGroupOf(t *testing.T) {
	s := baseSpec()
	if gi := s.DedupGroupOf("user_seq_1"); gi != 0 {
		t.Fatalf("group of user_seq_1 = %d want 0", gi)
	}
	if gi := s.DedupGroupOf("user_elem_2"); gi != 1 {
		t.Fatalf("group of user_elem_2 = %d want 1", gi)
	}
	if gi := s.DedupGroupOf("item_0"); gi != -1 {
		t.Fatalf("group of item_0 = %d want -1", gi)
	}
}

func TestReaderProducesValidBatches(t *testing.T) {
	env := newTestEnv(t, 40, true)
	batches, stats := runAll(t, env, baseSpec())

	if len(batches) == 0 {
		t.Fatal("no batches produced")
	}
	total := 0
	for _, b := range batches {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		total += b.Size
		if len(b.IKJTs) != 2 {
			t.Fatalf("batch has %d IKJT groups want 2", len(b.IKJTs))
		}
		if b.KJT == nil || b.KJT.NumKeys() != 2 {
			t.Fatal("batch missing KJT features")
		}
	}
	if total != len(env.samples) {
		t.Fatalf("batches carried %d rows, partition has %d", total, len(env.samples))
	}
	if stats.RowsDecoded != int64(len(env.samples)) {
		t.Fatalf("RowsDecoded = %d want %d", stats.RowsDecoded, len(env.samples))
	}
	if stats.BatchesProduced != int64(len(batches)) {
		t.Fatalf("BatchesProduced = %d want %d", stats.BatchesProduced, len(batches))
	}
	if stats.ReadBytes == 0 || stats.SentBytes == 0 {
		t.Fatalf("byte accounting empty: %+v", stats)
	}
}

// TestBatchesEncodeExactData is the paper's accuracy claim: IKJTs encode
// the exact same logical data, so expanding every batch must reproduce the
// original rows in order.
func TestBatchesEncodeExactData(t *testing.T) {
	env := newTestEnv(t, 30, true)
	spec := baseSpec()
	batches, _ := runAll(t, env, spec)

	row := 0
	for _, b := range batches {
		for _, key := range spec.ConsumedFeatures() {
			fi, ok := env.schema.FeatureIndex(key)
			if !ok {
				t.Fatalf("schema missing %q", key)
			}
			j, ok := b.Feature(key)
			if !ok {
				t.Fatalf("batch missing feature %q", key)
			}
			for i := 0; i < b.Size; i++ {
				want := env.samples[row+i].Sparse[fi]
				got := j.Row(i)
				if len(got) != len(want) {
					t.Fatalf("feature %q row %d: len %d want %d", key, row+i, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("feature %q row %d value %d: %d want %d", key, row+i, k, got[k], want[k])
					}
				}
			}
		}
		for i := 0; i < b.Size; i++ {
			if b.Labels[i] != float32(env.samples[row+i].Label) {
				t.Fatalf("label row %d mismatch", row+i)
			}
			for c := 0; c < b.Dense.Cols; c++ {
				if b.Dense.At(i, c) != env.samples[row+i].Dense[c] {
					t.Fatalf("dense row %d col %d mismatch", row+i, c)
				}
			}
		}
		row += b.Size
	}
}

// TestClusteringRaisesDedupFactor: clustered batches co-locate a session's
// samples, so IKJT dedup factors rise versus the interleaved baseline
// (paper §3: 16.5 samples/session per partition but 1.15 per batch without
// clustering).
func TestClusteringRaisesDedupFactor(t *testing.T) {
	factor := func(clustered bool) float64 {
		env := newTestEnv(t, 60, clustered)
		batches, _ := runAll(t, env, baseSpec())
		var orig, dedup float64
		for _, b := range batches {
			for _, ik := range b.IKJTs {
				for i := 0; i < ik.NumKeys(); i++ {
					dedup += float64(ik.DedupedAt(i).NumValues())
				}
			}
			orig += float64(b.OriginalSparseValues)
			if b.KJT != nil {
				orig -= float64(b.KJT.NumValues()) // KJT features not deduplicated
			}
		}
		return orig / dedup
	}

	base, clust := factor(false), factor(true)
	if clust <= base*1.5 {
		t.Fatalf("clustering should raise dedup factor: base %.2f clustered %.2f", base, clust)
	}
	// Interleaved batches retain some residual dedup at this small scale
	// (a session's samples are time-local), but far less than clustered.
	t.Logf("dedup factor: interleaved %.2f, clustered %.2f", base, clust)
}

// TestDedupReducesSentBytes: with the same data, a dedup spec sends fewer
// bytes to trainers than an all-KJT spec (Table 3 "Send Bytes").
func TestDedupReducesSentBytes(t *testing.T) {
	env := newTestEnv(t, 50, true)

	dedupSpec := baseSpec()
	kjtSpec := dedupSpec
	kjtSpec.DedupSparseFeatures = nil
	kjtSpec.SparseFeatures = dedupSpec.ConsumedFeatures()

	_, dedupStats := runAll(t, env, dedupSpec)
	_, kjtStats := runAll(t, env, kjtSpec)

	if dedupStats.SentBytes >= kjtStats.SentBytes {
		t.Fatalf("dedup should cut egress: dedup %d kjt %d", dedupStats.SentBytes, kjtStats.SentBytes)
	}
	if dedupStats.ReadBytes != kjtStats.ReadBytes {
		t.Fatalf("ingest bytes should not depend on spec: %d vs %d", dedupStats.ReadBytes, kjtStats.ReadBytes)
	}
	t.Logf("sent bytes: kjt %d, ikjt %d (%.2fx)", kjtStats.SentBytes, dedupStats.SentBytes,
		float64(kjtStats.SentBytes)/float64(dedupStats.SentBytes))
}

// TestDedupReducesProcessOps: transforms over IKJT groups run on deduped
// values only (O4), so ProcessOps shrinks versus the KJT spec while
// producing identical logical outputs.
func TestDedupReducesProcessOps(t *testing.T) {
	env := newTestEnv(t, 50, true)

	transforms := []SparseTransform{
		HashMod{Features: []string{"user_seq_0", "user_seq_1", "item_0"}, TableSize: 1 << 20},
	}
	dedupSpec := baseSpec()
	dedupSpec.SparseTransforms = transforms
	kjtSpec := dedupSpec
	kjtSpec.DedupSparseFeatures = nil
	kjtSpec.SparseFeatures = baseSpec().ConsumedFeatures()
	kjtSpec.SparseTransforms = transforms

	dedupBatches, dedupStats := runAll(t, env, dedupSpec)
	kjtBatches, kjtStats := runAll(t, env, kjtSpec)

	if dedupStats.ProcessOps >= kjtStats.ProcessOps {
		t.Fatalf("dedup should cut transform ops: %d vs %d", dedupStats.ProcessOps, kjtStats.ProcessOps)
	}

	// Logical equality of the transformed feature across both paths.
	for bi := range dedupBatches {
		want, _ := kjtBatches[bi].Feature("user_seq_0")
		got, _ := dedupBatches[bi].Feature("user_seq_0")
		if !got.Equal(want) {
			t.Fatalf("batch %d: transformed feature differs between IKJT and KJT paths", bi)
		}
	}
	t.Logf("process ops: kjt %d, ikjt %d (%.2fx)", kjtStats.ProcessOps, dedupStats.ProcessOps,
		float64(kjtStats.ProcessOps)/float64(dedupStats.ProcessOps))
}

func TestTransforms(t *testing.T) {
	j := tensor.NewJagged([][]tensor.Value{{1, 2, 3, 4, 5}, {100}, {}})

	tr := Truncate{Features: []string{"f"}, MaxLen: 2}
	got := tr.Apply(j)
	if got.RowLen(0) != 2 || got.Row(0)[0] != 4 || got.Row(0)[1] != 5 {
		t.Fatalf("truncate kept wrong window: %v", got.Row(0))
	}
	if got.RowLen(1) != 1 || got.RowLen(2) != 0 {
		t.Fatal("truncate damaged short rows")
	}

	cl := Clamp{Features: []string{"f"}, Min: 2, Max: 4}
	got = cl.Apply(j)
	if got.Row(0)[0] != 2 || got.Row(0)[4] != 4 || got.Row(1)[0] != 4 {
		t.Fatalf("clamp wrong: %v %v", got.Row(0), got.Row(1))
	}
	// Input untouched.
	if j.Row(0)[0] != 1 {
		t.Fatal("clamp mutated input")
	}

	hm := HashMod{Features: []string{"f"}, TableSize: 97}
	got = hm.Apply(j)
	for _, v := range got.Values {
		if v < 0 || v >= 97 {
			t.Fatalf("hash_mod out of range: %d", v)
		}
	}
	// Deterministic.
	again := hm.Apply(j)
	if !got.Equal(again) {
		t.Fatal("hash_mod not deterministic")
	}

	var d tensor.Dense = tensor.NewDense(1, 3)
	d.Data[0], d.Data[1], d.Data[2] = 0, 10, -10
	LogNormalize{}.Apply(d)
	if d.Data[0] != 0 || d.Data[1] <= 0 || d.Data[2] >= 0 {
		t.Fatalf("log_normalize wrong: %v", d.Data)
	}
	if d.Data[1] != -d.Data[2] {
		t.Fatal("log_normalize not sign-symmetric")
	}
}

func TestShortFinalBatch(t *testing.T) {
	env := newTestEnv(t, 10, true)
	spec := baseSpec()
	spec.BatchSize = 1000000 // bigger than the partition
	batches, _ := runAll(t, env, spec)
	if len(batches) != 1 {
		t.Fatalf("expected one short batch, got %d", len(batches))
	}
	if batches[0].Size != len(env.samples) {
		t.Fatalf("short batch size %d want %d", batches[0].Size, len(env.samples))
	}
}

// TestPlanRoundRobinCoversEveryFile: the session planner's sharding
// policy assigns every file exactly once, round-robin. (The dpp tests
// pin that a multi-worker session's stream equals the per-assignment
// serial concatenation; this pins the plan itself.)
func TestPlanRoundRobinCoversEveryFile(t *testing.T) {
	files := []string{"a", "b", "c", "d", "e"}
	assignments := PlanRoundRobin(files, 3)
	if len(assignments) != 3 {
		t.Fatalf("got %d assignments want 3", len(assignments))
	}
	seen := map[string]int{}
	for wi, assigned := range assignments {
		for fi, f := range assigned {
			seen[f]++
			if want := files[fi*3+wi]; f != want {
				t.Fatalf("worker %d slot %d = %q want %q (round-robin order)", wi, fi, f, want)
			}
		}
	}
	for _, f := range files {
		if seen[f] != 1 {
			t.Fatalf("file %q assigned %d times", f, seen[f])
		}
	}
}

func TestEmitErrorAborts(t *testing.T) {
	env := newTestEnv(t, 20, true)
	r, err := NewReader(env.store, baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	wantErr := fmt.Errorf("stop")
	calls := 0
	err = r.Run(context.Background(), files, func(b *Batch) error {
		calls++
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v want %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error", calls)
	}
}

func TestUnknownFeature(t *testing.T) {
	env := newTestEnv(t, 5, true)
	spec := baseSpec()
	spec.SparseFeatures = append(spec.SparseFeatures, "not_a_feature")
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	if err := r.Run(context.Background(), files, func(*Batch) error { return nil }); err == nil {
		t.Fatal("expected error for unknown feature")
	}
}

func BenchmarkReaderPipeline(b *testing.B) {
	env := newTestEnv(b, 100, true)
	spec := baseSpec()
	files, _ := env.catalog.AllFiles("tbl")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(env.store, spec)
		if err := r.Run(context.Background(), files, func(*Batch) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
