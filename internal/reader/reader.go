package reader

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Stats is the per-reader accounting the paper's reader experiments use:
// CPU time per stage (Fig 10's fill/convert/process breakdown), ingest
// bytes (Table 3 "Read Bytes"), egress bytes (Table 3 "Send Bytes"), and
// deterministic work counters that mirror the timed quantities.
type Stats struct {
	// Per-stage wall CPU time.
	FillTime    time.Duration
	ConvertTime time.Duration
	ProcessTime time.Duration

	// ReadBytes counts bytes fetched from the blob store (compressed).
	ReadBytes int64
	// SentBytes counts preprocessed tensor bytes shipped to trainers.
	SentBytes int64

	// RowsDecoded counts samples decoded by fill.
	RowsDecoded int64
	// BatchesProduced counts emitted batches.
	BatchesProduced int64
	// ConvertValues counts feature values scanned during conversion,
	// including the hash pass over dedup-group values (the paper's
	// "additional compute at readers to detect duplicate values").
	ConvertValues int64
	// ProcessOps counts transform value-operations actually executed;
	// deduplicated preprocessing lowers this (O4).
	ProcessOps int64
}

// TotalTime is the summed CPU time across stages.
func (s Stats) TotalTime() time.Duration {
	return s.FillTime + s.ConvertTime + s.ProcessTime
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.FillTime += o.FillTime
	s.ConvertTime += o.ConvertTime
	s.ProcessTime += o.ProcessTime
	s.ReadBytes += o.ReadBytes
	s.SentBytes += o.SentBytes
	s.RowsDecoded += o.RowsDecoded
	s.BatchesProduced += o.BatchesProduced
	s.ConvertValues += o.ConvertValues
	s.ProcessOps += o.ProcessOps
}

// Reader is one stateless reader node executing the fill → convert →
// process pipeline over an assigned list of files.
type Reader struct {
	store storage.Backend
	spec  Spec
	stats Stats
	// dedupers holds one reusable dedup table per spec dedup group. Group
	// i is always converted by exactly one task per batch, so each deduper
	// has a single user at a time and its scratch amortizes across the
	// whole scan.
	dedupers []*tensor.Deduper
}

// NewReader validates the spec and builds a reader over any storage
// backend (lakefs.Store in production, fakes in tests).
func NewReader(store storage.Backend, spec Spec) (*Reader, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dedupers := make([]*tensor.Deduper, len(spec.DedupSparseFeatures))
	for i := range dedupers {
		dedupers[i] = tensor.NewDeduper()
	}
	return &Reader{store: store, spec: spec, dedupers: dedupers}, nil
}

// Stats returns the accumulated accounting.
func (r *Reader) Stats() Stats { return r.stats }

// ResetStats zeroes the accounting.
func (r *Reader) ResetStats() { r.stats = Stats{} }

// Run scans the assigned files in order, producing preprocessed batches.
// Rows left over after the last file that do not fill a batch are emitted
// as a final short batch. emit returning an error aborts the scan.
//
// Cancelling ctx aborts the scan promptly — between files on the serial
// path, and before the next batch conversion on the pipelined path — and
// Run returns ctx.Err() with every pipeline goroutine torn down.
//
// With Spec.FillAhead > 0 the fill stage runs in its own goroutine,
// prefetching up to FillAhead decoded files through a bounded channel
// while earlier rows convert and process; batch order, batch contents,
// and every deterministic Stats counter are identical to the serial path.
func (r *Reader) Run(ctx context.Context, files []string, emit func(*Batch) error) error {
	if r.spec.FillAhead > 0 {
		return r.runPipelined(ctx, files, emit)
	}
	return r.runSerial(ctx, files, emit)
}

// fillResult is one decoded file handed from the fill stage to the
// convert/process consumer.
type fillResult struct {
	file    string
	samples []datagen.Sample
	keys    []string
	dense   int
	err     error
}

// consumeResults is the single convert/process consumer both execution
// modes share: it pulls decoded files from next, checks schema
// consistency, cuts fixed-size batches in order, and emits any leftover
// rows as a final short batch. Keeping one copy is what guarantees the
// serial and pipelined paths stay byte-identical.
func (r *Reader) consumeResults(ctx context.Context, next func() (fillResult, bool), emit func(*Batch) error) error {
	var pending []datagen.Sample
	var keys []string
	var dense int

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, ok := next()
		if !ok {
			break
		}
		if res.err != nil {
			return res.err
		}
		if keys == nil {
			keys, dense = res.keys, res.dense
		} else if len(res.keys) != len(keys) {
			return fmt.Errorf("reader: file %q schema mismatch (%d vs %d features)", res.file, len(res.keys), len(keys))
		}
		pending = append(pending, res.samples...)
		for len(pending) >= r.spec.BatchSize {
			if err := ctx.Err(); err != nil {
				return err
			}
			rows := pending[:r.spec.BatchSize]
			pending = pending[r.spec.BatchSize:]
			if err := r.produce(rows, keys, dense, emit); err != nil {
				return err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(pending) > 0 {
		return r.produce(pending, keys, dense, emit)
	}
	return nil
}

// runSerial is the reference fill→convert→process loop: one file at a
// time, entirely on the calling goroutine.
func (r *Reader) runSerial(ctx context.Context, files []string, emit func(*Batch) error) error {
	i := 0
	return r.consumeResults(ctx, func() (fillResult, bool) {
		if i >= len(files) {
			return fillResult{}, false
		}
		f := files[i]
		i++
		samples, keys, dense, err := r.fill(ctx, f)
		return fillResult{file: f, samples: samples, keys: keys, dense: dense, err: err}, true
	}, emit)
}

// runPipelined overlaps fill with convert/process. The fill goroutine is
// the only writer of the fill-stage Stats fields (FillTime, ReadBytes,
// RowsDecoded); the consumer owns the rest, so accounting stays exact
// without locks. Batches are cut and emitted on the consumer goroutine in
// file order, preserving the serial path's deterministic output.
func (r *Reader) runPipelined(ctx context.Context, files []string, emit func(*Batch) error) error {
	done := make(chan struct{})
	var fillWG sync.WaitGroup
	defer fillWG.Wait() // runs after close(done): never leak a filling goroutine
	defer close(done)

	ch := make(chan fillResult, r.spec.FillAhead)
	fillWG.Add(1)
	go func() {
		defer fillWG.Done()
		defer close(ch)
		for _, f := range files {
			// Check for abort before paying for a fill: after an emit
			// error or a cancellation the consumer is gone, and the
			// buffered send below could otherwise keep winning the select.
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			default:
			}
			samples, keys, dense, err := r.fill(ctx, f)
			select {
			case ch <- fillResult{file: f, samples: samples, keys: keys, dense: dense, err: err}:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	return r.consumeResults(ctx, func() (fillResult, bool) {
		res, ok := <-ch
		return res, ok
	}, emit)
}

// fetchCPUPasses is how many per-byte passes the simulated fetch path
// spends on each wire byte, standing in for the network stack, decryption,
// and checksumming a production DPP reader performs on fetched data
// (paper §6.3: fill = "fetching data from Tectonic and decrypting,
// decompressing (zstd), and decoding"). This makes fill CPU time scale
// with wire bytes, so clustering's smaller files cut fill time as they do
// in production (DESIGN.md documents the substitution).
const fetchCPUPasses = 160

// fetchSink absorbs the checksum so the compiler cannot elide the pass;
// atomic because tier readers fill concurrently.
var fetchSink atomic.Uint64

func simulateFetchWork(data []byte) {
	var h uint64 = 1469598103934665603
	for pass := 0; pass < fetchCPUPasses; pass++ {
		for _, b := range data {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	fetchSink.Add(h)
}

// fill reads one file from the store and decodes all rows (the paper's
// fill stage: fetch, decrypt, decompress, decode). Cancellation is
// honoured before the fetch and between stripe decodes.
func (r *Reader) fill(ctx context.Context, path string) ([]datagen.Sample, []string, int, error) {
	start := time.Now()
	defer func() { r.stats.FillTime += time.Since(start) }()

	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	data, err := r.store.Get(path)
	if err != nil {
		return nil, nil, 0, err
	}
	r.stats.ReadBytes += int64(len(data))
	simulateFetchWork(data)

	fr, err := dwrf.OpenReader(data)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("reader: %s: %w", path, err)
	}
	samples, err := fr.ReadAllContext(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, 0, ctx.Err()
		}
		return nil, nil, 0, fmt.Errorf("reader: %s: %w", path, err)
	}
	r.stats.RowsDecoded += int64(len(samples))
	return samples, fr.SparseKeys(), fr.DenseCount(), nil
}

// produce converts and preprocesses one run of rows and emits the batch.
func (r *Reader) produce(rows []datagen.Sample, keys []string, dense int, emit func(*Batch) error) error {
	b, err := r.ProduceBatch(rows, keys, dense)
	if err != nil {
		return err
	}
	return emit(b)
}

// ProduceBatch runs the convert and process stages over one run of rows,
// charging the reader's Stats exactly as a Run-emitted batch would. It is
// the batch-construction primitive the shared-scan path (dpp.ScanCache)
// composes when batches straddle file boundaries; Run-based scans never
// need it directly.
func (r *Reader) ProduceBatch(rows []datagen.Sample, keys []string, dense int) (*Batch, error) {
	b, err := r.convert(rows, keys, dense)
	if err != nil {
		return nil, err
	}
	if err := r.process(b); err != nil {
		return nil, err
	}
	r.stats.BatchesProduced++
	r.stats.SentBytes += int64(b.WireBytes())
	return b, nil
}

// gatherFeature copies one sparse feature's rows into a jagged tensor
// sized exactly, returning the gathered value count. It touches no Reader
// state, so convert tasks may call it concurrently.
func gatherFeature(rows []datagen.Sample, index map[string]int, key string) (tensor.Jagged, int, error) {
	fi, ok := index[key]
	if !ok {
		return tensor.Jagged{}, 0, fmt.Errorf("reader: feature %q not in table schema", key)
	}
	total := 0
	for i := range rows {
		total += len(rows[i].Sparse[fi])
	}
	j := tensor.Jagged{
		Values:  make([]tensor.Value, 0, total),
		Offsets: make([]int32, len(rows)),
	}
	for i := range rows {
		j.Offsets[i] = int32(len(j.Values))
		j.Values = append(j.Values, rows[i].Sparse[fi]...)
	}
	return j, total, nil
}

// groupResult is one dedup group's conversion output plus the raw
// (pre-dedup) value count it must contribute to Stats. Duplicate
// detection hashes every gathered value once more (paper §6.3), so the
// group charges 2×values to ConvertValues.
type groupResult struct {
	ik     *tensor.IKJT
	values int
}

// convertGroup gathers and deduplicates one dedup group using that
// group's reusable Deduper. Safe to run concurrently with other groups.
func (r *Reader) convertGroup(gi int, rows []datagen.Sample, index map[string]int) (groupResult, error) {
	group := r.spec.DedupSparseFeatures[gi]
	tensors := make([]tensor.Jagged, len(group))
	res := groupResult{}
	for i, key := range group {
		j, n, err := gatherFeature(rows, index, key)
		if err != nil {
			return groupResult{}, err
		}
		tensors[i] = j
		res.values += n
	}
	ik, err := r.dedupers[gi].Dedup(group, tensors)
	if err != nil {
		return groupResult{}, err
	}
	res.ik = ik
	return res, nil
}

// partialResult mirrors groupResult for one partial-dedup feature:
// shift detection also hashes/scans every gathered value.
type partialResult struct {
	p      *tensor.PartialIKJT
	values int
}

// convertPartial gathers and shift-deduplicates one partial feature.
func (r *Reader) convertPartial(pi int, rows []datagen.Sample, index map[string]int) (partialResult, error) {
	key := r.spec.PartialDedupFeatures[pi]
	j, n, err := gatherFeature(rows, index, key)
	if err != nil {
		return partialResult{}, err
	}
	return partialResult{p: tensor.PartialDedup(key, j), values: n}, nil
}

// convert is the feature-conversion stage: copy raw rows into structured
// tensors, deduplicating the spec's feature groups into IKJTs (O3). Dedup
// groups and partial features are independent, so with
// Spec.ConvertWorkers > 1 they convert concurrently; results land in spec
// order and counters are summed after the join, keeping output and Stats
// identical to serial conversion.
func (r *Reader) convert(rows []datagen.Sample, keys []string, dense int) (*Batch, error) {
	start := time.Now()
	defer func() { r.stats.ConvertTime += time.Since(start) }()

	index := make(map[string]int, len(keys))
	for i, k := range keys {
		index[k] = i
	}

	b := &Batch{Size: len(rows)}

	b.Dense = tensor.NewDense(len(rows), dense)
	for i, s := range rows {
		copy(b.Dense.Row(i), s.Dense)
	}
	b.Labels = make([]float32, len(rows))
	for i, s := range rows {
		b.Labels[i] = float32(s.Label)
	}

	if len(r.spec.SparseFeatures) > 0 {
		tensors := make([]tensor.Jagged, len(r.spec.SparseFeatures))
		for i, key := range r.spec.SparseFeatures {
			j, n, err := gatherFeature(rows, index, key)
			if err != nil {
				return nil, err
			}
			tensors[i] = j
			r.stats.ConvertValues += int64(n)
			b.OriginalSparseValues += n
		}
		kjt, err := tensor.NewKJT(r.spec.SparseFeatures, tensors)
		if err != nil {
			return nil, err
		}
		b.KJT = kjt
	}

	nGroups := len(r.spec.DedupSparseFeatures)
	nPartials := len(r.spec.PartialDedupFeatures)
	groupRes := make([]groupResult, nGroups)
	groupErr := make([]error, nGroups)
	partialRes := make([]partialResult, nPartials)
	partialErr := make([]error, nPartials)

	workers := r.spec.ConvertWorkers
	if workers > nGroups+nPartials {
		workers = nGroups + nPartials
	}
	if workers <= 1 {
		for gi := 0; gi < nGroups; gi++ {
			groupRes[gi], groupErr[gi] = r.convertGroup(gi, rows, index)
		}
		for pi := 0; pi < nPartials; pi++ {
			partialRes[pi], partialErr[pi] = r.convertPartial(pi, rows, index)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for gi := 0; gi < nGroups; gi++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(gi int) {
				defer wg.Done()
				defer func() { <-sem }()
				groupRes[gi], groupErr[gi] = r.convertGroup(gi, rows, index)
			}(gi)
		}
		for pi := 0; pi < nPartials; pi++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(pi int) {
				defer wg.Done()
				defer func() { <-sem }()
				partialRes[pi], partialErr[pi] = r.convertPartial(pi, rows, index)
			}(pi)
		}
		wg.Wait()
	}

	for gi := 0; gi < nGroups; gi++ {
		if groupErr[gi] != nil {
			return nil, groupErr[gi]
		}
		res := groupRes[gi]
		r.stats.ConvertValues += 2 * int64(res.values) // gather + hash pass
		b.OriginalSparseValues += res.values
		b.IKJTs = append(b.IKJTs, res.ik)
	}
	for pi := 0; pi < nPartials; pi++ {
		if partialErr[pi] != nil {
			return nil, partialErr[pi]
		}
		res := partialRes[pi]
		r.stats.ConvertValues += 2 * int64(res.values) // gather + shift scan
		b.OriginalSparseValues += res.values
		b.Partials = append(b.Partials, res.p)
	}
	return b, nil
}

// process runs the spec's transforms. Transforms over deduplicated groups
// run on the deduplicated slices only — the paper's transparent IKJT
// preprocessing wrapper (O4).
func (r *Reader) process(b *Batch) error {
	start := time.Now()
	defer func() { r.stats.ProcessTime += time.Since(start) }()

	for _, dt := range r.spec.DenseTransforms {
		dt.Apply(b.Dense)
	}

	for _, tr := range r.spec.SparseTransforms {
		for _, key := range tr.Keys() {
			if r.spec.IsPartial(key) {
				if !tr.ElementWise() {
					return fmt.Errorf("reader: transform %q is not element-wise and cannot target partial feature %q", tr.Name(), key)
				}
				p, err := applyToPartial(b, key, tr)
				if err != nil {
					return err
				}
				r.stats.ProcessOps += tr.Cost(len(p.Values))
				continue
			}
			if gi := r.spec.DedupGroupOf(key); gi >= 0 {
				ik := b.IKJTs[gi]
				dd, _ := ik.Deduped(key)
				r.stats.ProcessOps += tr.Cost(dd.NumValues())
				out, err := ik.MapDeduped(key, tr.Apply)
				if err != nil {
					return fmt.Errorf("reader: transform %q: %w", tr.Name(), err)
				}
				b.IKJTs[gi] = out
				continue
			}
			if b.KJT == nil {
				return fmt.Errorf("reader: transform %q references %q but batch has no KJT", tr.Name(), key)
			}
			j, ok := b.KJT.Feature(key)
			if !ok {
				return fmt.Errorf("reader: transform %q references missing feature %q", tr.Name(), key)
			}
			r.stats.ProcessOps += tr.Cost(j.NumValues())
			kjt, err := replaceKJTFeature(b.KJT, key, tr.Apply(j))
			if err != nil {
				return err
			}
			b.KJT = kjt
		}
	}
	return nil
}

// applyToPartial runs an element-wise transform over a partial IKJT's
// shared value buffer in place of the per-row view: every logical row
// aliases a window of the buffer, so one pass transforms the whole batch
// (O4 at its strongest).
func applyToPartial(b *Batch, key string, tr SparseTransform) (*tensor.PartialIKJT, error) {
	for pi, p := range b.Partials {
		if p.Key != key {
			continue
		}
		wrapped := tensor.NewJagged([][]tensor.Value{p.Values})
		out := tr.Apply(wrapped)
		if out.NumValues() != len(p.Values) {
			return nil, fmt.Errorf("reader: transform %q changed partial value count for %q", tr.Name(), key)
		}
		np := &tensor.PartialIKJT{
			Key:    p.Key,
			Values: append([]tensor.Value(nil), out.Values...),
			Lookup: p.Lookup,
		}
		b.Partials[pi] = np
		return np, nil
	}
	return nil, fmt.Errorf("reader: batch has no partial feature %q", key)
}

// replaceKJTFeature rebuilds a KJT with one feature's tensor replaced.
func replaceKJTFeature(k *tensor.KJT, key string, j tensor.Jagged) (*tensor.KJT, error) {
	keys := k.Keys()
	tensors := make([]tensor.Jagged, len(keys))
	for i, kk := range keys {
		if kk == key {
			tensors[i] = j
		} else {
			tensors[i] = k.FeatureAt(i)
		}
	}
	return tensor.NewKJT(keys, tensors)
}
