package reader

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/lakefs"
	"repro/internal/tensor"
)

// Stats is the per-reader accounting the paper's reader experiments use:
// CPU time per stage (Fig 10's fill/convert/process breakdown), ingest
// bytes (Table 3 "Read Bytes"), egress bytes (Table 3 "Send Bytes"), and
// deterministic work counters that mirror the timed quantities.
type Stats struct {
	// Per-stage wall CPU time.
	FillTime    time.Duration
	ConvertTime time.Duration
	ProcessTime time.Duration

	// ReadBytes counts bytes fetched from the blob store (compressed).
	ReadBytes int64
	// SentBytes counts preprocessed tensor bytes shipped to trainers.
	SentBytes int64

	// RowsDecoded counts samples decoded by fill.
	RowsDecoded int64
	// BatchesProduced counts emitted batches.
	BatchesProduced int64
	// ConvertValues counts feature values scanned during conversion,
	// including the hash pass over dedup-group values (the paper's
	// "additional compute at readers to detect duplicate values").
	ConvertValues int64
	// ProcessOps counts transform value-operations actually executed;
	// deduplicated preprocessing lowers this (O4).
	ProcessOps int64
}

// TotalTime is the summed CPU time across stages.
func (s Stats) TotalTime() time.Duration {
	return s.FillTime + s.ConvertTime + s.ProcessTime
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.FillTime += o.FillTime
	s.ConvertTime += o.ConvertTime
	s.ProcessTime += o.ProcessTime
	s.ReadBytes += o.ReadBytes
	s.SentBytes += o.SentBytes
	s.RowsDecoded += o.RowsDecoded
	s.BatchesProduced += o.BatchesProduced
	s.ConvertValues += o.ConvertValues
	s.ProcessOps += o.ProcessOps
}

// Reader is one stateless reader node executing the fill → convert →
// process pipeline over an assigned list of files.
type Reader struct {
	store *lakefs.Store
	spec  Spec
	stats Stats
}

// NewReader validates the spec and builds a reader.
func NewReader(store *lakefs.Store, spec Spec) (*Reader, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Reader{store: store, spec: spec}, nil
}

// Stats returns the accumulated accounting.
func (r *Reader) Stats() Stats { return r.stats }

// ResetStats zeroes the accounting.
func (r *Reader) ResetStats() { r.stats = Stats{} }

// Run scans the assigned files in order, producing preprocessed batches.
// Rows left over after the last file that do not fill a batch are emitted
// as a final short batch. emit returning an error aborts the scan.
func (r *Reader) Run(files []string, emit func(*Batch) error) error {
	var pending []datagen.Sample
	var keys []string
	var dense int

	for _, f := range files {
		samples, fkeys, fdense, err := r.fill(f)
		if err != nil {
			return err
		}
		if keys == nil {
			keys, dense = fkeys, fdense
		} else if len(fkeys) != len(keys) {
			return fmt.Errorf("reader: file %q schema mismatch (%d vs %d features)", f, len(fkeys), len(keys))
		}
		pending = append(pending, samples...)
		for len(pending) >= r.spec.BatchSize {
			rows := pending[:r.spec.BatchSize]
			pending = pending[r.spec.BatchSize:]
			if err := r.produce(rows, keys, dense, emit); err != nil {
				return err
			}
		}
	}
	if len(pending) > 0 {
		if err := r.produce(pending, keys, dense, emit); err != nil {
			return err
		}
	}
	return nil
}

// fetchCPUPasses is how many per-byte passes the simulated fetch path
// spends on each wire byte, standing in for the network stack, decryption,
// and checksumming a production DPP reader performs on fetched data
// (paper §6.3: fill = "fetching data from Tectonic and decrypting,
// decompressing (zstd), and decoding"). This makes fill CPU time scale
// with wire bytes, so clustering's smaller files cut fill time as they do
// in production (DESIGN.md documents the substitution).
const fetchCPUPasses = 160

// fetchSink absorbs the checksum so the compiler cannot elide the pass;
// atomic because tier readers fill concurrently.
var fetchSink atomic.Uint64

func simulateFetchWork(data []byte) {
	var h uint64 = 1469598103934665603
	for pass := 0; pass < fetchCPUPasses; pass++ {
		for _, b := range data {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	fetchSink.Add(h)
}

// fill reads one file from the store and decodes all rows (the paper's
// fill stage: fetch, decrypt, decompress, decode).
func (r *Reader) fill(path string) ([]datagen.Sample, []string, int, error) {
	start := time.Now()
	defer func() { r.stats.FillTime += time.Since(start) }()

	data, err := r.store.Get(path)
	if err != nil {
		return nil, nil, 0, err
	}
	r.stats.ReadBytes += int64(len(data))
	simulateFetchWork(data)

	fr, err := dwrf.OpenReader(data)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("reader: %s: %w", path, err)
	}
	samples, err := fr.ReadAll()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("reader: %s: %w", path, err)
	}
	r.stats.RowsDecoded += int64(len(samples))
	return samples, fr.SparseKeys(), fr.DenseCount(), nil
}

// produce converts and preprocesses one run of rows and emits the batch.
func (r *Reader) produce(rows []datagen.Sample, keys []string, dense int, emit func(*Batch) error) error {
	b, err := r.convert(rows, keys, dense)
	if err != nil {
		return err
	}
	if err := r.process(b); err != nil {
		return err
	}
	r.stats.BatchesProduced++
	r.stats.SentBytes += int64(b.WireBytes())
	return emit(b)
}

// convert is the feature-conversion stage: copy raw rows into structured
// tensors, deduplicating the spec's feature groups into IKJTs (O3).
func (r *Reader) convert(rows []datagen.Sample, keys []string, dense int) (*Batch, error) {
	start := time.Now()
	defer func() { r.stats.ConvertTime += time.Since(start) }()

	index := make(map[string]int, len(keys))
	for i, k := range keys {
		index[k] = i
	}

	b := &Batch{Size: len(rows)}

	b.Dense = tensor.NewDense(len(rows), dense)
	for i, s := range rows {
		copy(b.Dense.Row(i), s.Dense)
	}
	b.Labels = make([]float32, len(rows))
	for i, s := range rows {
		b.Labels[i] = float32(s.Label)
	}

	gather := func(key string) (tensor.Jagged, error) {
		fi, ok := index[key]
		if !ok {
			return tensor.Jagged{}, fmt.Errorf("reader: feature %q not in table schema", key)
		}
		lists := make([][]tensor.Value, len(rows))
		values := 0
		for i, s := range rows {
			lists[i] = s.Sparse[fi]
			values += len(s.Sparse[fi])
		}
		r.stats.ConvertValues += int64(values)
		b.OriginalSparseValues += values
		return tensor.NewJagged(lists), nil
	}

	if len(r.spec.SparseFeatures) > 0 {
		tensors := make([]tensor.Jagged, len(r.spec.SparseFeatures))
		for i, key := range r.spec.SparseFeatures {
			j, err := gather(key)
			if err != nil {
				return nil, err
			}
			tensors[i] = j
		}
		kjt, err := tensor.NewKJT(r.spec.SparseFeatures, tensors)
		if err != nil {
			return nil, err
		}
		b.KJT = kjt
	}

	for _, group := range r.spec.DedupSparseFeatures {
		tensors := make([]tensor.Jagged, len(group))
		for i, key := range group {
			j, err := gather(key)
			if err != nil {
				return nil, err
			}
			tensors[i] = j
		}
		ik, err := tensor.DedupJagged(group, tensors)
		if err != nil {
			return nil, err
		}
		// Duplicate detection hashes every value once more (paper §6.3:
		// conversion time rises, offset by fill/process savings).
		for _, t := range tensors {
			r.stats.ConvertValues += int64(t.NumValues())
		}
		b.IKJTs = append(b.IKJTs, ik)
	}

	for _, key := range r.spec.PartialDedupFeatures {
		j, err := gather(key)
		if err != nil {
			return nil, err
		}
		p := tensor.PartialDedup(key, j)
		// Shift detection also hashes/scans every value.
		r.stats.ConvertValues += int64(j.NumValues())
		b.Partials = append(b.Partials, p)
	}
	return b, nil
}

// process runs the spec's transforms. Transforms over deduplicated groups
// run on the deduplicated slices only — the paper's transparent IKJT
// preprocessing wrapper (O4).
func (r *Reader) process(b *Batch) error {
	start := time.Now()
	defer func() { r.stats.ProcessTime += time.Since(start) }()

	for _, dt := range r.spec.DenseTransforms {
		dt.Apply(b.Dense)
	}

	for _, tr := range r.spec.SparseTransforms {
		for _, key := range tr.Keys() {
			if r.spec.IsPartial(key) {
				if !tr.ElementWise() {
					return fmt.Errorf("reader: transform %q is not element-wise and cannot target partial feature %q", tr.Name(), key)
				}
				p, err := applyToPartial(b, key, tr)
				if err != nil {
					return err
				}
				r.stats.ProcessOps += tr.Cost(len(p.Values))
				continue
			}
			if gi := r.spec.DedupGroupOf(key); gi >= 0 {
				ik := b.IKJTs[gi]
				dd, _ := ik.Deduped(key)
				r.stats.ProcessOps += tr.Cost(dd.NumValues())
				out, err := ik.MapDeduped(key, tr.Apply)
				if err != nil {
					return fmt.Errorf("reader: transform %q: %w", tr.Name(), err)
				}
				b.IKJTs[gi] = out
				continue
			}
			if b.KJT == nil {
				return fmt.Errorf("reader: transform %q references %q but batch has no KJT", tr.Name(), key)
			}
			j, ok := b.KJT.Feature(key)
			if !ok {
				return fmt.Errorf("reader: transform %q references missing feature %q", tr.Name(), key)
			}
			r.stats.ProcessOps += tr.Cost(j.NumValues())
			kjt, err := replaceKJTFeature(b.KJT, key, tr.Apply(j))
			if err != nil {
				return err
			}
			b.KJT = kjt
		}
	}
	return nil
}

// applyToPartial runs an element-wise transform over a partial IKJT's
// shared value buffer in place of the per-row view: every logical row
// aliases a window of the buffer, so one pass transforms the whole batch
// (O4 at its strongest).
func applyToPartial(b *Batch, key string, tr SparseTransform) (*tensor.PartialIKJT, error) {
	for pi, p := range b.Partials {
		if p.Key != key {
			continue
		}
		wrapped := tensor.NewJagged([][]tensor.Value{p.Values})
		out := tr.Apply(wrapped)
		if out.NumValues() != len(p.Values) {
			return nil, fmt.Errorf("reader: transform %q changed partial value count for %q", tr.Name(), key)
		}
		np := &tensor.PartialIKJT{
			Key:    p.Key,
			Values: append([]tensor.Value(nil), out.Values...),
			Lookup: p.Lookup,
		}
		b.Partials[pi] = np
		return np, nil
	}
	return nil, fmt.Errorf("reader: batch has no partial feature %q", key)
}

// replaceKJTFeature rebuilds a KJT with one feature's tensor replaced.
func replaceKJTFeature(k *tensor.KJT, key string, j tensor.Jagged) (*tensor.KJT, error) {
	keys := k.Keys()
	tensors := make([]tensor.Jagged, len(keys))
	for i, kk := range keys {
		if kk == key {
			tensors[i] = j
		} else {
			tensors[i] = k.FeatureAt(i)
		}
	}
	return tensor.NewKJT(keys, tensors)
}
