package reader

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/datagen"
)

func TestFingerprintCoversOutputFields(t *testing.T) {
	base := func() Spec {
		s := baseSpec()
		s.SparseTransforms = []SparseTransform{HashMod{Features: []string{"item_0"}, TableSize: 1 << 10}}
		s.DenseTransforms = []DenseTransform{LogNormalize{}}
		return s
	}

	// Fields that never change batch output must not change the key.
	same := []func(*Spec){
		func(s *Spec) { s.Table = "other_table" },
		func(s *Spec) { s.FillAhead = 7 },
		func(s *Spec) { s.ConvertWorkers = 3 },
	}
	for i, mutate := range same {
		a, b := base(), base()
		mutate(&b)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("mutation %d changed fingerprint but cannot change output", i)
		}
	}

	// Fields that do change output must change the key.
	diff := []func(*Spec){
		func(s *Spec) { s.BatchSize = 32 },
		func(s *Spec) { s.SparseFeatures = []string{"item_0"} },
		func(s *Spec) { s.DedupSparseFeatures = [][]string{{"user_seq_0"}, {"user_seq_1"}} },
		func(s *Spec) { s.PartialDedupFeatures = []string{"item_1"}; s.SparseFeatures = []string{"item_0"} },
		func(s *Spec) {
			s.SparseTransforms = []SparseTransform{HashMod{Features: []string{"item_0"}, TableSize: 1 << 11}}
		},
		func(s *Spec) { s.SparseTransforms = nil },
		func(s *Spec) { s.DenseTransforms = nil },
	}
	for i, mutate := range diff {
		a, b := base(), base()
		mutate(&b)
		if a.Fingerprint() == b.Fingerprint() {
			t.Errorf("mutation %d left fingerprint unchanged but changes output", i)
		}
	}
}

// composeScan rebuilds a multi-file scan from the file-aligned primitives
// the shared-scan cache uses: ScanFile when no rows are carried in,
// FillFile + ProduceBatch when batch boundaries straddle files. It is the
// reference shape of the dpp cached-worker loop.
func composeScan(t *testing.T, r *Reader, files []string) []*Batch {
	t.Helper()
	ctx := context.Background()
	bs := r.BatchSize()
	var out []*Batch
	var carry []datagen.Sample
	var keys []string
	var dense int
	for _, f := range files {
		if len(carry) == 0 {
			fs, err := r.ScanFile(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			if keys == nil {
				keys, dense = fs.Keys, fs.Dense
			}
			out = append(out, fs.Batches...)
			carry = append([]datagen.Sample(nil), fs.Tail...)
			continue
		}
		samples, fkeys, fdense, err := r.FillFile(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		if keys == nil {
			keys, dense = fkeys, fdense
		}
		carry = append(carry, samples...)
		for len(carry) >= bs {
			b, err := r.ProduceBatch(carry[:bs], keys, dense)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
			carry = carry[bs:]
		}
	}
	if len(carry) > 0 {
		b, err := r.ProduceBatch(carry, keys, dense)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// TestScanFileCompositionMatchesRun pins the shared-scan soundness
// argument: a scan assembled from ScanFile/FillFile/ProduceBatch is
// byte-identical to a serial Run over the same files, with identical
// deterministic Stats counters — both when files align to the batch size
// (every boundary hits the file-aligned fast path) and when they don't
// (rows carry across files).
func TestScanFileCompositionMatchesRun(t *testing.T) {
	env := newTestEnv(t, 60, true)
	for _, tc := range []struct {
		name  string
		batch int
	}{
		{"aligned", 64}, // 256 rows/file % 64 == 0
		{"misaligned", 48} /* 256 % 48 != 0: tails carry across files */} {
		t.Run(tc.name, func(t *testing.T) {
			spec := baseSpec()
			spec.BatchSize = tc.batch
			spec.SparseTransforms = []SparseTransform{HashMod{Features: []string{"item_0"}, TableSize: 1 << 16}}
			want, wantStats := runAll(t, env, spec)

			r, err := NewReader(env.store, spec)
			if err != nil {
				t.Fatal(err)
			}
			files, err := env.catalog.AllFiles(spec.Table)
			if err != nil {
				t.Fatal(err)
			}
			if len(files) < 2 {
				t.Fatal("need multiple files to exercise carry")
			}
			got := composeScan(t, r, files)

			if len(got) != len(want) {
				t.Fatalf("composed scan produced %d batches, Run produced %d", len(got), len(want))
			}
			for i := range want {
				var wb, gb bytes.Buffer
				if err := want[i].Encode(&wb); err != nil {
					t.Fatal(err)
				}
				if err := got[i].Encode(&gb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
					t.Fatalf("batch %d differs from serial Run", i)
				}
			}
			gs := r.Stats()
			if gs.ReadBytes != wantStats.ReadBytes || gs.RowsDecoded != wantStats.RowsDecoded ||
				gs.BatchesProduced != wantStats.BatchesProduced || gs.SentBytes != wantStats.SentBytes ||
				gs.ConvertValues != wantStats.ConvertValues || gs.ProcessOps != wantStats.ProcessOps {
				t.Fatalf("composed stats %+v, Run stats %+v", gs, wantStats)
			}
		})
	}
}

// TestFileScanMemBytes sanity-checks the cache cost estimate: nonzero,
// and strictly larger for a scan holding more rows.
func TestFileScanMemBytes(t *testing.T) {
	env := newTestEnv(t, 60, true)
	spec := baseSpec()
	r, err := NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, err := env.catalog.AllFiles(spec.Table)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := r.ScanFile(context.Background(), files[0])
	if err != nil {
		t.Fatal(err)
	}
	if fs.MemBytes() <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", fs.MemBytes())
	}
	small := &FileScan{Batches: fs.Batches[:1], Keys: fs.Keys, Dense: fs.Dense}
	if small.MemBytes() >= fs.MemBytes() {
		t.Fatalf("subset MemBytes %d >= full %d", small.MemBytes(), fs.MemBytes())
	}
}
