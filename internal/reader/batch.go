package reader

import (
	"fmt"

	"repro/internal/tensor"
)

// Batch is one preprocessed training batch as shipped from a reader to a
// trainer: dense features, labels, plain sparse features as a KJT, and one
// IKJT per dedup group from the spec.
type Batch struct {
	// Size is the number of logical rows (samples).
	Size int
	// Dense is the Size×D dense feature matrix.
	Dense tensor.Dense
	// Labels holds one label per row.
	Labels []float32
	// KJT carries the non-deduplicated sparse features; nil when the spec
	// lists none.
	KJT *tensor.KJT
	// IKJTs carries one grouped IKJT per spec.DedupSparseFeatures entry,
	// in spec order.
	IKJTs []*tensor.IKJT
	// Partials carries one partial IKJT per spec.PartialDedupFeatures
	// entry (§7): shift-deduplicated sequence features.
	Partials []*tensor.PartialIKJT
	// OriginalSparseValues is the pre-dedup total value count across all
	// sparse features in the batch, for dedup-factor reporting.
	OriginalSparseValues int
}

// WireBytes reports the bytes a reader sends to a trainer for this batch:
// dense floats, labels, KJT values+offsets, and IKJT values+offsets+
// inverse lookups. Deduplication shrinks this (O4's reader→trainer
// network saving).
func (b *Batch) WireBytes() int {
	total := b.Dense.WireBytes() + 4*len(b.Labels)
	if b.KJT != nil {
		total += b.KJT.WireBytes()
	}
	for _, ik := range b.IKJTs {
		total += ik.WireBytes()
	}
	for _, p := range b.Partials {
		total += p.WireBytes()
	}
	return total
}

// SparseValues reports the total sparse values carried (deduplicated for
// IKJT groups).
func (b *Batch) SparseValues() int {
	n := 0
	if b.KJT != nil {
		n += b.KJT.NumValues()
	}
	for _, ik := range b.IKJTs {
		for i := 0; i < ik.NumKeys(); i++ {
			n += ik.DedupedAt(i).NumValues()
		}
	}
	for _, p := range b.Partials {
		n += len(p.Values)
	}
	return n
}

// Feature returns the full-batch jagged tensor for a key, expanding from
// an IKJT if the key was deduplicated.
func (b *Batch) Feature(key string) (tensor.Jagged, bool) {
	if b.KJT != nil {
		if j, ok := b.KJT.Feature(key); ok {
			return j, true
		}
	}
	for _, ik := range b.IKJTs {
		if j, ok := ik.Feature(key); ok {
			return j, true
		}
	}
	for _, p := range b.Partials {
		if p.Key == key {
			return p.ToJagged(), true
		}
	}
	return tensor.Jagged{}, false
}

// Validate checks batch invariants: consistent row counts everywhere.
func (b *Batch) Validate() error {
	if len(b.Labels) != b.Size {
		return fmt.Errorf("reader: batch has %d labels for %d rows", len(b.Labels), b.Size)
	}
	if b.Dense.RowsN != b.Size && b.Dense.Cols > 0 {
		return fmt.Errorf("reader: dense matrix has %d rows for %d samples", b.Dense.RowsN, b.Size)
	}
	if b.KJT != nil {
		if err := b.KJT.Validate(); err != nil {
			return err
		}
		if b.KJT.NumKeys() > 0 && b.KJT.Rows() != b.Size {
			return fmt.Errorf("reader: kjt has %d rows for %d samples", b.KJT.Rows(), b.Size)
		}
	}
	for gi, ik := range b.IKJTs {
		if err := ik.Validate(); err != nil {
			return fmt.Errorf("reader: ikjt group %d: %w", gi, err)
		}
		if ik.Batch() != b.Size {
			return fmt.Errorf("reader: ikjt group %d has batch %d for %d samples", gi, ik.Batch(), b.Size)
		}
	}
	for _, p := range b.Partials {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("reader: partial %q: %w", p.Key, err)
		}
		if p.Rows() != b.Size {
			return fmt.Errorf("reader: partial %q has %d rows for %d samples", p.Key, p.Rows(), b.Size)
		}
	}
	return nil
}
