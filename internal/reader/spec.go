// Package reader implements the stateless reader tier of the training
// pipeline (paper §2.1, Fig 5): each reader fills batches of rows from
// storage, converts them to tensors (KJTs, and IKJTs for the feature
// groups named in the DataLoader spec — O3), and preprocesses them with
// user transforms before they are sent to trainers (O4).
//
// Every stage charges its work to per-stage CPU-time and work counters so
// the paper's reader experiments (Fig 10 CPU breakdown, Table 3
// ingest/egress bytes) can be regenerated.
package reader

import (
	"fmt"
	"strings"
)

// Spec is the DataLoader specification a training job submits: which
// features it consumes, which of them to deduplicate (and how to group
// them), and which preprocessing transforms to run at the readers.
type Spec struct {
	// Table is the dataset table to scan.
	Table string
	// BatchSize is the number of rows per training batch.
	BatchSize int
	// SparseFeatures are consumed as plain KJTs.
	SparseFeatures []string
	// DedupSparseFeatures is the paper's dedup_sparse_features field: a
	// list of feature groups, each deduplicated into one (grouped) IKJT.
	DedupSparseFeatures [][]string
	// PartialDedupFeatures are converted to partial IKJTs (§7), which
	// also deduplicate shifted windows of sequence features. Only
	// element-wise transforms may target them.
	PartialDedupFeatures []string
	// SparseTransforms are applied to sparse features at the readers
	// after conversion, standing in for TorchScript modules.
	SparseTransforms []SparseTransform
	// DenseTransforms are applied to the dense feature matrix.
	DenseTransforms []DenseTransform

	// FillAhead bounds how many decoded files the fill stage may prefetch
	// ahead of conversion. 0 keeps fill inline with conversion (the serial
	// reference path); N > 0 runs fill in its own goroutine feeding a
	// channel of capacity N, overlapping storage IO/decode with
	// convert/process. Batch order and contents are identical either way.
	FillAhead int
	// ConvertWorkers bounds how many feature-conversion tasks (one per
	// dedup group, one per partial feature — they are independent) run
	// concurrently within a batch. 0 or 1 converts serially.
	ConvertWorkers int
}

// Validate checks internal consistency: no feature may appear twice across
// the KJT list and the dedup groups, groups must be non-empty, and
// transforms must reference consumed features.
func (s Spec) Validate() error {
	if s.Table == "" {
		return fmt.Errorf("reader: spec has no table")
	}
	if s.BatchSize <= 0 {
		return fmt.Errorf("reader: batch size %d", s.BatchSize)
	}
	if s.FillAhead < 0 {
		return fmt.Errorf("reader: negative fill-ahead %d", s.FillAhead)
	}
	if s.ConvertWorkers < 0 {
		return fmt.Errorf("reader: negative convert workers %d", s.ConvertWorkers)
	}
	seen := map[string]bool{}
	for _, k := range s.SparseFeatures {
		if seen[k] {
			return fmt.Errorf("reader: feature %q listed twice", k)
		}
		seen[k] = true
	}
	for gi, g := range s.DedupSparseFeatures {
		if len(g) == 0 {
			return fmt.Errorf("reader: dedup group %d is empty", gi)
		}
		for _, k := range g {
			if seen[k] {
				return fmt.Errorf("reader: feature %q listed twice", k)
			}
			seen[k] = true
		}
	}
	for _, k := range s.PartialDedupFeatures {
		if seen[k] {
			return fmt.Errorf("reader: feature %q listed twice", k)
		}
		seen[k] = true
	}
	for _, tr := range s.SparseTransforms {
		for _, k := range tr.Keys() {
			if !seen[k] {
				return fmt.Errorf("reader: transform %q references unconsumed feature %q", tr.Name(), k)
			}
		}
	}
	return nil
}

// ConsumedFeatures returns every sparse feature the spec reads: KJT
// features first, then dedup groups in order, then partial features.
func (s Spec) ConsumedFeatures() []string {
	out := append([]string(nil), s.SparseFeatures...)
	for _, g := range s.DedupSparseFeatures {
		out = append(out, g...)
	}
	out = append(out, s.PartialDedupFeatures...)
	return out
}

// IsPartial reports whether key is consumed as a partial IKJT.
func (s Spec) IsPartial(key string) bool {
	for _, k := range s.PartialDedupFeatures {
		if k == key {
			return true
		}
	}
	return false
}

// Fingerprint returns a canonical string covering exactly the spec
// fields that determine batch output for a given input file: batch size,
// feature lists, dedup grouping, and the transforms with their
// parameters. Two specs with equal fingerprints produce byte-identical
// batches from identical rows, which is what makes the fingerprint a
// sound cache-key component for cross-session scan sharing
// (dpp.ScanCache keys entries by (file, fingerprint)).
//
// Deliberately excluded: Table (it only resolves the scan set — the file
// path is the other key half), and the execution knobs FillAhead and
// ConvertWorkers (they change scheduling, never output — the reader's
// pipelined/serial equivalence tests pin that).
//
// Transforms are fingerprinted by their Go type and printed value, so
// custom SparseTransform/DenseTransform implementations must be value
// types whose %+v representation captures their behaviour — true of any
// plain parameter struct, including all transforms in this package.
func (s Spec) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch=%d;sparse=%q;dedup=%q;partial=%q;st=[",
		s.BatchSize, s.SparseFeatures, s.DedupSparseFeatures, s.PartialDedupFeatures)
	for _, tr := range s.SparseTransforms {
		fmt.Fprintf(&b, "%T%+v;", tr, tr)
	}
	b.WriteString("];dt=[")
	for _, tr := range s.DenseTransforms {
		fmt.Fprintf(&b, "%T%+v;", tr, tr)
	}
	b.WriteString("]")
	return b.String()
}

// DedupGroupOf returns the index of the dedup group containing key, or -1.
func (s Spec) DedupGroupOf(key string) int {
	for gi, g := range s.DedupSparseFeatures {
		for _, k := range g {
			if k == key {
				return gi
			}
		}
	}
	return -1
}
