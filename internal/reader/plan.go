package reader

// PlanRoundRobin splits a scan set across n workers round-robin — the
// static file-level sharding policy dpp sessions used before the shared
// ordered work queue (ScanQueue) replaced it. It currently has no
// production callers: per-session worker scheduling pulls from a
// ScanQueue so the worker count can change mid-scan without changing
// the stream. The eight lines stay as the reference static-partition
// primitive for fleet-level sharding (splitting a table across whole
// sessions or processes, a ROADMAP direction) and are pinned by
// TestPlanRoundRobinCoversEveryFile.
func PlanRoundRobin(files []string, n int) [][]string {
	assignments := make([][]string, n)
	for i, f := range files {
		assignments[i%n] = append(assignments[i%n], f)
	}
	return assignments
}

// ThroughputSamplesPerSec converts stats into the paper's reader metric:
// samples preprocessed per second of reader CPU time.
func ThroughputSamplesPerSec(s Stats) float64 {
	if s.TotalTime() <= 0 {
		return 0
	}
	return float64(s.RowsDecoded) / s.TotalTime().Seconds()
}
