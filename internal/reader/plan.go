package reader

// PlanRoundRobin splits a scan set across n workers round-robin, the
// file-level sharding policy the paper's reader tier uses ("the number of
// readers for each job is scaled to meet trainers' ingestion bandwidth
// demands"). The dpp session planner shards its per-session reader
// workers with it, and serial reference tests replay the same plan to pin
// multi-reader streams batch for batch.
func PlanRoundRobin(files []string, n int) [][]string {
	assignments := make([][]string, n)
	for i, f := range files {
		assignments[i%n] = append(assignments[i%n], f)
	}
	return assignments
}

// ThroughputSamplesPerSec converts stats into the paper's reader metric:
// samples preprocessed per second of reader CPU time.
func ThroughputSamplesPerSec(s Stats) float64 {
	if s.TotalTime() <= 0 {
		return 0
	}
	return float64(s.RowsDecoded) / s.TotalTime().Seconds()
}
