package reader

import (
	"context"
	"sync"
	"time"

	"repro/internal/datagen"
)

// ScanQueue is the shared ordered work queue behind a resizable reader
// pool (dpp session autoscaling): workers claim file indices in scan
// order, fill them in parallel, and deposit the decoded rows; a single
// assembler awaits the results strictly in file-index order, so the
// reassembled stream is byte-identical to one serial scan over the whole
// file list no matter how many workers fill it — or how often that
// worker count changes mid-scan. This replaces static round-robin file
// assignment (reader.PlanRoundRobin), whose batch boundaries depended on
// the worker count.
//
// Claims are bounded by a sliding window over the assembler's position:
// a file index may be claimed only while it is within `window` of the
// next index the assembler will consume. That caps decoded-but-unmerged
// files (the queue's memory bound) and is what transmits consumer
// backpressure to the fill workers. The window resizes with the worker
// pool.
//
// The claim/deposit/await-in-order machinery itself is OrderedMerge,
// shared with the fleet multiplexer (dppshard); ScanQueue binds it to a
// file list and FileResult.
//
// All methods are safe for concurrent use.
type ScanQueue struct {
	fmu   sync.RWMutex // guards files, which grows under Extend
	files []string
	m     *OrderedMerge[FileResult]
}

// FileResult is one filled file handed from a claiming worker to the
// assembler: the decoded rows, the file schema, or the fill error.
type FileResult struct {
	Samples []datagen.Sample
	Keys    []string
	Dense   int
	Err     error
}

// NewScanQueue builds a queue over files with the given claim window
// (clamped to at least 1). A nil now falls back to time.Now; it stamps
// blocking intervals for the worker-starvation counter, injectable so
// controller tests can run on a manual clock.
func NewScanQueue(files []string, window int, now func() time.Time) *ScanQueue {
	return &ScanQueue{files: files, m: NewOrderedMerge[FileResult](len(files), window, now)}
}

// NewOpenScanQueue builds an open-ended queue over an initial file
// prefix: workers and the assembler park at the end of the known files
// instead of finishing, until Extend appends newly landed files or
// Finish declares the scan set complete. This is the queue shape of a
// Follow session tailing a live partition.
func NewOpenScanQueue(files []string, window int, now func() time.Time) *ScanQueue {
	return &ScanQueue{files: files, m: NewOpenOrderedMerge[FileResult](len(files), window, now)}
}

// Extend appends newly landed files to an open queue, waking workers and
// the assembler parked at the old end. Returns the new scan-set size.
func (q *ScanQueue) Extend(files []string) int {
	if len(files) == 0 {
		return q.Len()
	}
	q.fmu.Lock()
	q.files = append(q.files, files...)
	q.fmu.Unlock()
	return q.m.Extend(len(files))
}

// Finish closes an open queue: no further Extend is coming, so the scan
// runs out the remaining files and ends normally (tail flush included).
// Idempotent.
func (q *ScanQueue) Finish() { q.m.Finish() }

// Len reports the scan-set size known so far.
func (q *ScanQueue) Len() int { return q.m.Len() }

// Pos reports the assembler's position: the index of the next file it
// will merge. Len() - Pos() is the not-yet-merged backlog.
func (q *ScanQueue) Pos() int { return q.m.Pos() }

// file returns the path at index i under the files lock; workers and the
// assembler read through it because Extend grows the slice concurrently.
func (q *ScanQueue) file(i int) string {
	q.fmu.RLock()
	defer q.fmu.RUnlock()
	return q.files[i]
}

// Claim hands the caller the next unclaimed file index, blocking while
// the claim window is full. ok is false once the scan set is exhausted or
// the queue is aborted; a worker that gets ok must fill the file and
// Deposit the result (claims are never reassigned, so an abandoned claim
// would wedge the assembler).
func (q *ScanQueue) Claim() (idx int, file string, ok bool) {
	idx, ok = q.m.Claim()
	if !ok {
		return 0, "", false
	}
	return idx, q.file(idx), true
}

// Deposit publishes a claimed file's fill result and wakes the assembler.
func (q *ScanQueue) Deposit(idx int, res FileResult) { q.m.Deposit(idx, res) }

// Await returns file results strictly in index order: the idx'th call
// pattern is Await(0), Await(1), ... Each call blocks until that index
// has been deposited; ok is false when the queue is aborted or idx is
// past the scan set. Time spent blocked accumulates into Stall — the
// worker-starvation signal autoscaling consumes.
func (q *ScanQueue) Await(idx int) (res FileResult, ok bool) { return q.m.Await(idx) }

// SetWindow resizes the claim window (clamped to at least 1), waking
// workers the wider window unblocks. Shrinking never revokes claims
// already handed out.
func (q *ScanQueue) SetWindow(n int) { q.m.SetWindow(n) }

// Abort wakes every blocked Claim and Await with ok == false. Idempotent;
// called on session teardown and after the assembler finishes, so workers
// parked on a full window never outlive the scan.
func (q *ScanQueue) Abort() { q.m.Abort() }

// Stall returns the accumulated time Await spent blocked waiting for
// deposits — including an in-progress block — which is the "scan starved
// for fill workers" half of the autoscaling signal (the other half,
// waiting on the consumer, is measured where batches are handed off).
func (q *ScanQueue) Stall() time.Duration { return q.m.Stall() }

// FillQueue runs one worker over the queue: claim a file, fill it, and
// deposit the result, until the scan set is exhausted, the queue aborts,
// fill fails (the error is deposited for the assembler to surface in
// order), or stop returns true — the resizable pool's between-files
// scale-down checkpoint. A nil stop never stops.
//
// Fill work charges this reader's Stats; a pool sums its workers'
// readers to recover exactly the counters one serial scan would report,
// because every file is claimed exactly once.
func (r *Reader) FillQueue(ctx context.Context, q *ScanQueue, stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		idx, file, ok := q.Claim()
		if !ok {
			return
		}
		samples, keys, dense, err := r.fill(ctx, file)
		q.Deposit(idx, FileResult{Samples: samples, Keys: keys, Dense: dense, Err: err})
		if err != nil {
			return
		}
	}
}

// RunQueue is the assembler half of a queued scan: it consumes deposited
// files in index order and cuts, converts, and processes batches exactly
// as a serial Run over q's whole file list would — same batch boundaries,
// same bytes, same deterministic counters (convert/process work charges
// this reader; fill work lives in the workers' readers). Returns ctx.Err
// when the queue aborts under a cancelled context.
func (r *Reader) RunQueue(ctx context.Context, q *ScanQueue, emit func(*Batch) error) error {
	i := 0
	return r.consumeResults(ctx, func() (fillResult, bool) {
		res, ok := q.Await(i)
		if !ok {
			return fillResult{}, false
		}
		file := q.file(i)
		i++
		return fillResult{file: file, samples: res.Samples, keys: res.Keys, dense: res.Dense, err: res.Err}, true
	}, emit)
}
