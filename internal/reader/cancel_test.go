package reader

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/testutil"
)

// TestRunCancelledMidScan: cancelling the context mid-run returns
// ctx.Err() promptly — without finishing the remaining files — and leaks
// no goroutines, on both the serial and pipelined paths.
func TestRunCancelledMidScan(t *testing.T) {
	for _, cfg := range []struct {
		name                      string
		fillAhead, convertWorkers int
	}{
		{"serial", 0, 0},
		{"pipelined", 3, 2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			before := runtime.NumGoroutine()

			// A wide scan set so the prefetching fill stage (at most
			// FillAhead buffered + one in flight) cannot decode the whole
			// table before the consumer observes the cancellation.
			env := newTestEnv(t, 400, true)
			spec := baseSpec()
			spec.FillAhead = cfg.fillAhead
			spec.ConvertWorkers = cfg.convertWorkers
			r, err := NewReader(env.store, spec)
			if err != nil {
				t.Fatal(err)
			}
			files, _ := env.catalog.AllFiles("tbl")
			if len(files) < cfg.fillAhead+5 {
				t.Fatalf("need a wide multi-file scan, got %d files", len(files))
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			emitted := 0
			err = r.Run(ctx, files, func(*Batch) error {
				emitted++
				if emitted == 1 {
					cancel() // cancel mid-run, with most of the scan left
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run after cancel = %v, want context.Canceled", err)
			}
			if emitted == 0 {
				t.Fatal("scan never started before cancellation")
			}
			// Promptness: the scan must not have run to completion.
			if got, all := r.Stats().RowsDecoded, int64(len(env.samples)); got >= all {
				t.Fatalf("cancelled run decoded all %d rows", all)
			}

			testutil.WaitForGoroutines(t, before)
		})
	}
}

// TestRunCancelledBeforeStart: an already-cancelled context never emits.
func TestRunCancelledBeforeStart(t *testing.T) {
	env := newTestEnv(t, 10, true)
	r, err := NewReader(env.store, baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	files, _ := env.catalog.AllFiles("tbl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = r.Run(ctx, files, func(*Batch) error {
		t.Fatal("emit called under cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
}
