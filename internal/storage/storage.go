// Package storage defines the blob-store and catalog interfaces the
// ingestion service reads training data through. The paper's DPP service
// sits between many training jobs and Tectonic; decoupling the readers
// from one concrete store is what lets the same session API serve an
// in-memory store in tests, lakefs in the reproduction, and (eventually)
// sharded or cached multi-backend deployments named in the ROADMAP.
//
// lakefs.Store and lakefs.Catalog are the canonical implementations;
// both interfaces are small enough that a test fake is a dozen lines.
package storage

// Backend is the read surface of a blob store holding immutable DWRF
// files. Implementations must be safe for concurrent use: one Backend is
// shared by every reader worker of every session.
type Backend interface {
	// Get returns the full blob at path. The returned slice must be
	// treated as immutable.
	Get(path string) ([]byte, error)
	// ReadRange returns n bytes starting at off. Reads past end-of-blob
	// return a short slice (object-store range-read semantics).
	ReadRange(path string, off, n int64) ([]byte, error)
	// Size reports the stored size of the blob at path.
	Size(path string) (int64, error)
	// List returns all paths with the given prefix, sorted.
	List(prefix string) []string
	// Exists reports whether a blob is stored at path.
	Exists(path string) bool
}

// Catalog resolves a table name to the ordered file list a full scan of
// that table reads. Implementations must be safe for concurrent use.
type Catalog interface {
	// AllFiles returns every file of every partition of the table, in
	// deterministic scan order.
	AllFiles(table string) ([]string, error)
}
