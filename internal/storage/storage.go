// Package storage defines the blob-store and catalog interfaces the
// ingestion service reads training data through. The paper's DPP service
// sits between many training jobs and Tectonic; decoupling the readers
// from one concrete store is what lets the same session API serve an
// in-memory store in tests, lakefs in the reproduction, and (eventually)
// sharded or cached multi-backend deployments named in the ROADMAP.
//
// lakefs.Store and lakefs.Catalog are the canonical implementations;
// both interfaces are small enough that a test fake is a dozen lines.
package storage

import "context"

// Backend is the read surface of a blob store holding immutable DWRF
// files. Implementations must be safe for concurrent use: one Backend is
// shared by every reader worker of every session.
type Backend interface {
	// Get returns the full blob at path. The returned slice must be
	// treated as immutable.
	Get(path string) ([]byte, error)
	// ReadRange returns n bytes starting at off. Reads past end-of-blob
	// return a short slice (object-store range-read semantics).
	ReadRange(path string, off, n int64) ([]byte, error)
	// Size reports the stored size of the blob at path.
	Size(path string) (int64, error)
	// List returns all paths with the given prefix, sorted.
	List(prefix string) []string
	// Exists reports whether a blob is stored at path.
	Exists(path string) bool
}

// Catalog resolves a table name to the ordered file list a full scan of
// that table reads. Implementations must be safe for concurrent use.
type Catalog interface {
	// AllFiles returns every file of every partition of the table, in
	// deterministic scan order.
	AllFiles(table string) ([]string, error)
}

// PublishedFile is one catalog entry of a live table: a file path, the
// hourly partition it landed into, and its catalog-wide publish sequence
// number. Sequence numbers are strictly increasing in landing order and
// never reused, which is what makes them a stable tail cursor.
type PublishedFile struct {
	Path string
	Hour int64
	Seq  uint64
}

// TailingCatalog is the optional catalog extension a Follow session
// needs: tables may grow (and shrink, under retention) while sessions
// are open, and the catalog announces both. Implementations must be safe
// for concurrent use.
type TailingCatalog interface {
	Catalog
	// Generation returns a counter that moves on every catalog mutation.
	Generation() uint64
	// WaitChange blocks until the generation exceeds since or ctx is
	// done, returning the generation observed (and ctx.Err() if done).
	WaitChange(ctx context.Context, since uint64) (uint64, error)
	// PublishedFiles returns the table's live files with publish sequence
	// greater than afterSeq, in publish order.
	PublishedFiles(table string, afterSeq uint64) ([]PublishedFile, error)
}

// InvalidationNotifier is the optional catalog extension cache tiers
// subscribe to: fn is called with the paths of every file the catalog
// deletes, after the blobs are gone from the backing store. A cache that
// subscribes and evicts on notification cannot serve data retention
// already destroyed — the stale-cache-after-retention bug this hook
// exists to close.
type InvalidationNotifier interface {
	OnInvalidate(fn func(paths []string))
}
