package storage_test

import (
	"fmt"
	"log"

	"repro/internal/lakefs"
	"repro/internal/storage"
)

// ExampleBackend shows the read surface every reader worker and session
// shares: code written against storage.Backend runs unchanged over the
// in-memory lakefs store, a test fake, or a caching wrapper.
func ExampleBackend() {
	store := lakefs.NewStore()
	if err := store.Put("tbl/hour=0/part-00000.dwrf", []byte("stripe-bytes")); err != nil {
		log.Fatal(err)
	}

	var backend storage.Backend = store

	blob, err := backend.Get("tbl/hour=0/part-00000.dwrf")
	if err != nil {
		log.Fatal(err)
	}
	head, err := backend.ReadRange("tbl/hour=0/part-00000.dwrf", 0, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blob: %s\n", blob)
	fmt.Printf("range: %s\n", head)
	fmt.Printf("files under tbl/: %v\n", backend.List("tbl/"))
	fmt.Printf("exists: %v\n", backend.Exists("tbl/hour=0/part-00000.dwrf"))
	// Output:
	// blob: stripe-bytes
	// range: stripe
	// files under tbl/: [tbl/hour=0/part-00000.dwrf]
	// exists: true
}

// ExampleCachingBackend shows raw-byte scan sharing: two sessions reading
// the same file cost the underlying store one read, not two.
func ExampleCachingBackend() {
	store := lakefs.NewStore()
	if err := store.Put("tbl/part-00000.dwrf", []byte("shared-bytes")); err != nil {
		log.Fatal(err)
	}

	cached := storage.NewCachingBackend(store, 1<<20)
	for session := 0; session < 2; session++ {
		if _, err := cached.Get("tbl/part-00000.dwrf"); err != nil {
			log.Fatal(err)
		}
	}

	st := cached.Stats()
	fmt.Printf("cache hits: %d, misses: %d\n", st.Hits, st.Misses)
	fmt.Printf("store reads: %d\n", store.Stats().ReadOps)
	// Output:
	// cache hits: 1, misses: 1
	// store reads: 1
}
