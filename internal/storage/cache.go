package storage

import (
	"container/list"
	"sync"
)

// CachingBackend wraps another Backend with a byte-bounded LRU cache of
// whole blobs, so that many sessions scanning the same files fetch each
// blob from the underlying store once instead of once per session. It is
// the raw-byte tier of cross-session scan sharing: sessions whose specs
// differ cannot share decoded batches (dpp.ScanCache), but they can still
// share the fetched bytes underneath.
//
// Concurrent Gets of the same uncached path are coalesced: one caller
// fetches from the inner backend while the rest wait for that fetch
// (single-flight), so a thundering herd of sessions opening on the same
// partition costs one inner read per file.
//
// The cached slices are the inner backend's return values and are served
// to every caller; Backend's contract already requires callers to treat
// returned slices as immutable, so sharing them is safe.
type CachingBackend struct {
	inner Backend
	max   int64

	mu       sync.Mutex
	bytes    int64
	entries  map[string]*list.Element // -> *blobEntry, in lru
	lru      *list.List               // front = most recently used
	inflight map[string]*blobFetch

	hits, misses, evictions int64
}

// blobEntry is one cached blob with its LRU bookkeeping.
type blobEntry struct {
	path string
	data []byte
}

// blobFetch coalesces concurrent misses on one path.
type blobFetch struct {
	done chan struct{}
	data []byte
	err  error
}

var _ Backend = (*CachingBackend)(nil)

// NewCachingBackend wraps inner with a cache of at most maxBytes of blob
// data. maxBytes must be positive; blobs larger than the whole budget are
// served but never retained.
func NewCachingBackend(inner Backend, maxBytes int64) *CachingBackend {
	if maxBytes <= 0 {
		panic("storage: caching backend needs a positive byte budget")
	}
	return &CachingBackend{
		inner:    inner,
		max:      maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*blobFetch),
	}
}

// Get returns the blob at path, serving from cache when possible. Misses
// fetch from the inner backend exactly once per concurrent group of
// callers and then populate the cache, evicting least-recently-used blobs
// to stay within the byte budget. A fetch error propagates only to the
// caller that performed the fetch; coalesced waiters retry (and one of
// them fetches), so one caller's transient failure cannot poison another
// session's scan — the same contract as dpp.ScanCache.
func (c *CachingBackend) Get(path string) ([]byte, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[path]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			data := el.Value.(*blobEntry).data
			c.mu.Unlock()
			return data, nil
		}
		if f, ok := c.inflight[path]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err == nil {
				return f.data, nil
			}
			continue // leader failed; retry (and possibly fetch ourselves)
		}
		f := &blobFetch{done: make(chan struct{})}
		c.inflight[path] = f
		c.misses++
		c.mu.Unlock()

		f.data, f.err = c.inner.Get(path)

		c.mu.Lock()
		delete(c.inflight, path)
		if f.err == nil {
			c.insert(path, f.data)
		}
		c.mu.Unlock()
		close(f.done)
		return f.data, f.err
	}
}

// insert adds a blob and evicts from the LRU tail until the budget holds.
// Callers hold c.mu.
func (c *CachingBackend) insert(path string, data []byte) {
	if int64(len(data)) > c.max {
		return // would evict the entire cache for one unretainable blob
	}
	if el, ok := c.entries[path]; ok { // raced with another insert
		c.lru.MoveToFront(el)
		return
	}
	c.entries[path] = c.lru.PushFront(&blobEntry{path: path, data: data})
	c.bytes += int64(len(data))
	for c.bytes > c.max {
		last := c.lru.Back()
		if last == nil {
			break
		}
		e := last.Value.(*blobEntry)
		c.lru.Remove(last)
		delete(c.entries, e.path)
		c.bytes -= int64(len(e.data))
		c.evictions++
	}
}

// ReadRange serves the range from a cached blob when present (charging a
// hit) and delegates to the inner backend otherwise. Range reads do not
// populate the cache — partial reads cannot be safely promoted to whole
// blobs.
func (c *CachingBackend) ReadRange(path string, off, n int64) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.entries[path]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		data := el.Value.(*blobEntry).data
		c.mu.Unlock()
		if off < 0 || n < 0 {
			return c.inner.ReadRange(path, off, n) // let inner report the error idiomatically
		}
		if off > int64(len(data)) {
			return c.inner.ReadRange(path, off, n)
		}
		end := off + n
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		return data[off:end], nil
	}
	c.misses++
	c.mu.Unlock()
	return c.inner.ReadRange(path, off, n)
}

// Size delegates to the inner backend.
func (c *CachingBackend) Size(path string) (int64, error) { return c.inner.Size(path) }

// List delegates to the inner backend.
func (c *CachingBackend) List(prefix string) []string { return c.inner.List(prefix) }

// Exists delegates to the inner backend.
func (c *CachingBackend) Exists(path string) bool { return c.inner.Exists(path) }

// CacheStats is a snapshot of a CachingBackend's accounting.
type CacheStats struct {
	// Hits and Misses count Get/ReadRange lookups served from / past the
	// cache. Coalesced waiters of one in-flight fetch count as one miss
	// for the fetcher and no hit or miss for the waiters.
	Hits, Misses int64
	// Evictions counts blobs dropped to respect the byte budget.
	Evictions int64
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
}

// Stats returns a snapshot of the cache accounting.
func (c *CachingBackend) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
	}
}
