package storage

import (
	"context"

	"repro/internal/cachecore"
)

// CachingBackend wraps another Backend with a byte-bounded LRU cache of
// whole blobs, so that many sessions scanning the same files fetch each
// blob from the underlying store once instead of once per session. It is
// the raw-byte tier of cross-session scan sharing: sessions whose specs
// differ cannot share decoded batches (dpp.ScanCache), but they can still
// share the fetched bytes underneath.
//
// The single-flight + LRU engine is internal/cachecore, shared with
// dpp.ScanCache: concurrent Gets of the same uncached path are coalesced
// — one caller fetches from the inner backend while the rest wait for
// that fetch — so a thundering herd of sessions opening on the same
// partition costs one inner read per file, and a fetch error propagates
// only to the caller that performed the fetch (waiters retry, so one
// caller's transient failure cannot poison another session's scan).
//
// The cached slices are the inner backend's return values and are served
// to every caller; Backend's contract already requires callers to treat
// returned slices as immutable, so sharing them is safe.
type CachingBackend struct {
	inner Backend
	core  *cachecore.Cache[string, []byte]
}

var _ Backend = (*CachingBackend)(nil)

// NewCachingBackend wraps inner with a cache of at most maxBytes of blob
// data. maxBytes must be positive; blobs larger than the whole budget are
// served but never retained.
func NewCachingBackend(inner Backend, maxBytes int64) *CachingBackend {
	if maxBytes <= 0 {
		panic("storage: caching backend needs a positive byte budget")
	}
	return &CachingBackend{
		inner: inner,
		core: cachecore.New[string](
			cachecore.Config{MaxBytes: maxBytes},
			func(data []byte) int64 { return int64(len(data)) },
		),
	}
}

// Get returns the blob at path, serving from cache when possible. Misses
// fetch from the inner backend exactly once per concurrent group of
// callers and then populate the cache, evicting least-recently-used blobs
// to stay within the byte budget.
func (c *CachingBackend) Get(path string) ([]byte, error) {
	data, _, err := c.core.Get(context.Background(), path, func(context.Context) ([]byte, error) {
		return c.inner.Get(path)
	})
	return data, err
}

// ReadRange serves the range from a cached blob when present (charging a
// hit) and delegates to the inner backend otherwise. Range reads do not
// populate the cache — partial reads cannot be safely promoted to whole
// blobs.
func (c *CachingBackend) ReadRange(path string, off, n int64) ([]byte, error) {
	data, ok := c.core.Peek(path)
	if !ok {
		return c.inner.ReadRange(path, off, n)
	}
	if off < 0 || n < 0 {
		return c.inner.ReadRange(path, off, n) // let inner report the error idiomatically
	}
	if off > int64(len(data)) {
		return c.inner.ReadRange(path, off, n)
	}
	end := off + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end], nil
}

// InvalidateFiles evicts the named blobs from the cache, dooming
// in-flight fetches so they are served but not retained. Wire it to a
// catalog's InvalidationNotifier so retention drops cannot leave the raw
// tier serving bytes the store deleted. Returns how many entries were
// dropped.
func (c *CachingBackend) InvalidateFiles(paths []string) int {
	n := 0
	for _, p := range paths {
		if c.core.Remove(p) {
			n++
		}
	}
	return n
}

// Demote releases the cached blob for path without touching hit/miss
// accounting of future lookups. The decoded tier calls this once it has
// retained a file's scan: keeping the raw bytes too would charge the same
// file to both budgets (the ROADMAP's double-caching item), and the
// decoded form is the one sessions actually reuse. Reports whether a
// resident or in-flight entry was released.
func (c *CachingBackend) Demote(path string) bool {
	return c.core.Remove(path)
}

// Size delegates to the inner backend.
func (c *CachingBackend) Size(path string) (int64, error) { return c.inner.Size(path) }

// List delegates to the inner backend.
func (c *CachingBackend) List(prefix string) []string { return c.inner.List(prefix) }

// Exists delegates to the inner backend.
func (c *CachingBackend) Exists(path string) bool { return c.inner.Exists(path) }

// CacheStats is a snapshot of a CachingBackend's accounting.
type CacheStats struct {
	// Hits and Misses count Get/ReadRange lookups served from / past the
	// cache. Coalesced waiters of one in-flight fetch count as one miss
	// for the fetcher and no hit or miss for the waiters.
	Hits, Misses int64
	// Evictions counts blobs dropped to respect the byte budget.
	Evictions int64
	// Invalidations counts blobs dropped for coherence: retention
	// invalidations plus demotions to the decoded tier.
	Invalidations int64
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
}

// Stats returns a snapshot of the cache accounting.
func (c *CachingBackend) Stats() CacheStats {
	st := c.core.Stats()
	return CacheStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
		Entries:       st.Entries,
		Bytes:         st.Bytes,
	}
}
