package storage_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// countingBackend is a minimal Backend that counts inner fetches.
type countingBackend struct {
	mu    sync.Mutex
	blobs map[string][]byte
	gets  atomic.Int64
}

func newCountingBackend() *countingBackend {
	return &countingBackend{blobs: make(map[string][]byte)}
}

func (b *countingBackend) put(path string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blobs[path] = data
}

func (b *countingBackend) Get(path string) ([]byte, error) {
	b.gets.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.blobs[path]
	if !ok {
		return nil, fmt.Errorf("countingBackend: %q not found", path)
	}
	return d, nil
}

func (b *countingBackend) ReadRange(path string, off, n int64) ([]byte, error) {
	d, err := b.Get(path)
	if err != nil {
		return nil, err
	}
	if off > int64(len(d)) {
		return nil, fmt.Errorf("countingBackend: offset %d beyond %d", off, len(d))
	}
	end := off + n
	if end > int64(len(d)) {
		end = int64(len(d))
	}
	return d[off:end], nil
}

func (b *countingBackend) Size(path string) (int64, error) {
	d, err := b.Get(path)
	return int64(len(d)), err
}

func (b *countingBackend) List(prefix string) []string { return nil }

func (b *countingBackend) Exists(path string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.blobs[path]
	return ok
}

func TestCachingBackendHitMiss(t *testing.T) {
	inner := newCountingBackend()
	inner.put("a", []byte("aaaa"))
	c := storage.NewCachingBackend(inner, 1<<20)

	for i := 0; i < 3; i++ {
		got, err := c.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("aaaa")) {
			t.Fatalf("Get = %q", got)
		}
	}
	if n := inner.gets.Load(); n != 1 {
		t.Fatalf("inner fetched %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 2 hits 1 miss", st)
	}

	// ReadRange served from the cached blob without touching inner.
	r, err := c.ReadRange("a", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, []byte("aa")) {
		t.Fatalf("ReadRange = %q", r)
	}
	if n := inner.gets.Load(); n != 1 {
		t.Fatalf("ReadRange hit inner (%d fetches)", n)
	}

	// Errors are not cached.
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("expected error for missing blob")
	}
	inner.put("missing", []byte("late"))
	if got, err := c.Get("missing"); err != nil || !bytes.Equal(got, []byte("late")) {
		t.Fatalf("late blob: %q, %v", got, err)
	}
}

func TestCachingBackendEvictsLRU(t *testing.T) {
	inner := newCountingBackend()
	for _, p := range []string{"a", "b", "c"} {
		inner.put(p, bytes.Repeat([]byte(p), 4))
	}
	c := storage.NewCachingBackend(inner, 8) // room for two 4-byte blobs

	mustGet := func(p string) {
		t.Helper()
		if _, err := c.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	mustGet("a")
	mustGet("b")
	mustGet("a") // refresh a: b is now LRU
	mustGet("c") // evicts b
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction 2 entries", st)
	}
	fetched := inner.gets.Load()
	mustGet("a") // still cached
	if inner.gets.Load() != fetched {
		t.Fatal("a was evicted but b was least recently used")
	}
	mustGet("b") // refetched
	if inner.gets.Load() != fetched+1 {
		t.Fatal("expected b to have been evicted and refetched")
	}

	// A blob exceeding the whole budget is served but never retained.
	inner.put("huge", bytes.Repeat([]byte("h"), 16))
	mustGet("huge")
	if st := c.Stats(); st.Bytes > 8 {
		t.Fatalf("budget exceeded: %+v", st)
	}
}

// gatedBackend lets a test hold a fetch in flight and fail it on demand.
type gatedBackend struct {
	*countingBackend
	mu       sync.Mutex
	failNext bool
	entered  chan struct{}
	release  chan struct{}
}

func (g *gatedBackend) Get(path string) ([]byte, error) {
	g.entered <- struct{}{}
	<-g.release
	g.mu.Lock()
	fail := g.failNext
	g.failNext = false
	g.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("transient fetch failure")
	}
	return g.countingBackend.Get(path)
}

// TestCachingBackendWaiterRetriesAfterLeaderFailure: a coalesced waiter
// must not inherit the fetching caller's error — it retries and fetches
// itself, mirroring dpp.ScanCache's contract.
func TestCachingBackendWaiterRetriesAfterLeaderFailure(t *testing.T) {
	inner := newCountingBackend()
	inner.put("a", []byte("payload"))
	gated := &gatedBackend{
		countingBackend: inner,
		failNext:        true,
		entered:         make(chan struct{}),
		release:         make(chan struct{}),
	}
	c := storage.NewCachingBackend(gated, 1<<20)

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Get("a")
		leaderErr <- err
	}()
	<-gated.entered // leader's fetch is in flight

	waiterDone := make(chan error, 1)
	var waiterData []byte
	go func() {
		d, err := c.Get("a")
		waiterData = d
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park behind the leader
	gated.release <- struct{}{}       // leader fails

	if err := <-leaderErr; err == nil {
		t.Fatal("leader should have failed")
	}
	<-gated.entered // the waiter retried and is now fetching itself
	gated.release <- struct{}{}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter inherited the leader's failure: %v", err)
	}
	if !bytes.Equal(waiterData, []byte("payload")) {
		t.Fatalf("waiter data = %q", waiterData)
	}
}

func TestCachingBackendSingleFlight(t *testing.T) {
	inner := newCountingBackend()
	inner.put("a", []byte("payload"))
	c := storage.NewCachingBackend(inner, 1<<20)

	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = c.Get("a")
		}(i)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Coalescing is best-effort under scheduling, but the cache must not
	// fetch once per caller.
	if n := inner.gets.Load(); n > callers/2 {
		t.Fatalf("inner fetched %d times for %d concurrent callers", n, callers)
	}
}
