package scribe

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"repro/internal/metrics"
)

// ShardPolicy selects the message attribute used as the shard key.
type ShardPolicy int

const (
	// ShardByRequest is the baseline: load-balance by request ID, which
	// scatters a session's messages across shards (paper: "the default
	// hashing configuration distributes logs for each session randomly
	// across shards").
	ShardByRequest ShardPolicy = iota
	// ShardBySession is RecD O1: use the session ID as the shard key,
	// improving the compressibility of data within each shard.
	ShardBySession
)

// String implements fmt.Stringer.
func (p ShardPolicy) String() string {
	switch p {
	case ShardByRequest:
		return "request"
	case ShardBySession:
		return "session"
	default:
		return fmt.Sprintf("ShardPolicy(%d)", int(p))
	}
}

// Message is one raw inference log record.
type Message struct {
	RequestID int64
	SessionID int64
	Payload   []byte
}

// Config parameterizes a Scribe cluster.
type Config struct {
	// Shards is the number of physical storage nodes.
	Shards int
	// BlockBytes is the buffered bytes threshold at which a shard
	// compresses and seals a block. Defaults to 256 KiB.
	BlockBytes int
	// Policy selects the shard key.
	Policy ShardPolicy
	// CompressionLevel is the flate level (defaults to flate.DefaultCompression).
	CompressionLevel int
}

// Cluster is an in-process Scribe stand-in: a set of shards fed through a
// consistent-hash ring, each buffering and block-compressing messages.
type Cluster struct {
	cfg    Config
	ring   *hashRing
	shards []*shard

	// Bytes tracks cluster-wide RX (uncompressed appended bytes) and TX
	// (compressed bytes served to ETL consumers).
	Bytes metrics.ByteCounter
}

type shard struct {
	mu      sync.Mutex
	buf     bytes.Buffer // pending uncompressed block
	pending int          // messages in buf
	blocks  [][]byte     // sealed compressed blocks
	level   int
	limit   int

	rawBytes        int64
	compressedBytes int64
	messages        int64
}

// New creates a Scribe cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("scribe: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 256 << 10
	}
	if cfg.CompressionLevel == 0 {
		cfg.CompressionLevel = flate.DefaultCompression
	}
	c := &Cluster{cfg: cfg, ring: newHashRing(cfg.Shards)}
	if err := c.ring.validate(cfg.Shards); err != nil {
		return nil, err
	}
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{level: cfg.CompressionLevel, limit: cfg.BlockBytes}
	}
	return c, nil
}

// Append routes a message to its shard and buffers it.
func (c *Cluster) Append(m Message) error {
	key := m.RequestID
	if c.cfg.Policy == ShardBySession {
		key = m.SessionID
	}
	sh := c.shards[c.ring.shardFor(key)]
	n, err := sh.append(m)
	if err != nil {
		return err
	}
	c.Bytes.RX.Add(int64(n))
	return nil
}

func (s *shard) append(m Message) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hdr [20]byte
	putI64(hdr[0:], m.RequestID)
	putI64(hdr[8:], m.SessionID)
	putU32(hdr[16:], uint32(len(m.Payload)))
	s.buf.Write(hdr[:])
	s.buf.Write(m.Payload)
	s.pending++
	s.messages++
	n := len(hdr) + len(m.Payload)
	s.rawBytes += int64(n)
	if s.buf.Len() >= s.limit {
		if err := s.sealLocked(); err != nil {
			return n, err
		}
	}
	return n, nil
}

func putI64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU32(b []byte) uint32 {
	var u uint32
	for i := 0; i < 4; i++ {
		u |= uint32(b[i]) << (8 * i)
	}
	return u
}

func (s *shard) sealLocked() error {
	if s.buf.Len() == 0 {
		return nil
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, s.level)
	if err != nil {
		return fmt.Errorf("scribe: flate init: %w", err)
	}
	if _, err := w.Write(s.buf.Bytes()); err != nil {
		return fmt.Errorf("scribe: compress block: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("scribe: close block: %w", err)
	}
	s.blocks = append(s.blocks, append([]byte(nil), out.Bytes()...))
	s.compressedBytes += int64(out.Len())
	s.buf.Reset()
	s.pending = 0
	return nil
}

// Flush seals all shards' pending blocks.
func (c *Cluster) Flush() error {
	for i, sh := range c.shards {
		sh.mu.Lock()
		err := sh.sealLocked()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("scribe: shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats summarizes cluster-wide compression.
type Stats struct {
	Shards          int
	Messages        int64
	RawBytes        int64
	CompressedBytes int64
}

// CompressionRatio is raw over compressed bytes (1 if nothing stored).
func (s Stats) CompressionRatio() float64 {
	if s.CompressedBytes == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.CompressedBytes)
}

// Stats returns cluster-wide statistics. Call Flush first for exact
// numbers.
func (c *Cluster) Stats() Stats {
	st := Stats{Shards: len(c.shards)}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Messages += sh.messages
		st.RawBytes += sh.rawBytes
		st.CompressedBytes += sh.compressedBytes
		sh.mu.Unlock()
	}
	return st
}

// ShardLoads returns per-shard message counts (for balance checks).
func (c *Cluster) ShardLoads() []int64 {
	out := make([]int64, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = sh.messages
		sh.mu.Unlock()
	}
	return out
}

// Consume decompresses and yields every stored message (ETL ingest). The
// cluster's TX counter advances by the compressed bytes actually moved,
// which is the network traffic downstream ETL jobs pay for (paper §4.1).
func (c *Cluster) Consume(fn func(Message) error) error {
	for i, sh := range c.shards {
		sh.mu.Lock()
		if err := sh.sealLocked(); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("scribe: shard %d: %w", i, err)
		}
		blocks := sh.blocks
		sh.mu.Unlock()
		for _, blk := range blocks {
			c.Bytes.TX.Add(int64(len(blk)))
			r := flate.NewReader(bytes.NewReader(blk))
			raw, err := io.ReadAll(r)
			if cerr := r.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("scribe: shard %d decompress: %w", i, err)
			}
			for off := 0; off < len(raw); {
				if off+20 > len(raw) {
					return fmt.Errorf("scribe: shard %d truncated block", i)
				}
				m := Message{
					RequestID: getI64(raw[off:]),
					SessionID: getI64(raw[off+8:]),
				}
				n := int(getU32(raw[off+16:]))
				off += 20
				if off+n > len(raw) {
					return fmt.Errorf("scribe: shard %d truncated payload", i)
				}
				m.Payload = append([]byte(nil), raw[off:off+n]...)
				off += n
				if err := fn(m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
