package scribe

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/datagen"
)

func sessionLogStream(t *testing.T, sessions int) []Message {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 8, Item: 2, Dense: 4, SeqLen: 60, Seed: 1,
	})
	g := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              sessions,
		MeanSamplesPerSession: 12,
		Seed:                  2,
	})
	samples := g.GeneratePartition()
	msgs := make([]Message, len(samples))
	for i, s := range samples {
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		msgs[i] = Message{RequestID: s.RequestID, SessionID: s.SessionID, Payload: buf.Bytes()}
	}
	return msgs
}

func TestClusterRoundTrip(t *testing.T) {
	msgs := sessionLogStream(t, 50)
	c, err := New(Config{Shards: 4, Policy: ShardBySession, BlockBytes: 32 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, m := range msgs {
		if err := c.Append(m); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := map[int64][]byte{}
	if err := c.Consume(func(m Message) error {
		got[m.RequestID] = m.Payload
		return nil
	}); err != nil {
		t.Fatalf("Consume: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("consumed %d messages, want %d", len(got), len(msgs))
	}
	for _, m := range msgs {
		if !bytes.Equal(got[m.RequestID], m.Payload) {
			t.Fatalf("payload mismatch for request %d", m.RequestID)
		}
	}
}

// TestSessionShardingImprovesCompression reproduces the §6.1 Scribe result:
// sharding by session ID improves the black-box compression ratio over
// request-random sharding (paper: 1.50x → 2.25x).
func TestSessionShardingImprovesCompression(t *testing.T) {
	msgs := sessionLogStream(t, 150)
	ratio := func(policy ShardPolicy) float64 {
		c, err := New(Config{Shards: 8, Policy: policy, BlockBytes: 64 << 10})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for _, m := range msgs {
			if err := c.Append(m); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return c.Stats().CompressionRatio()
	}
	random := ratio(ShardByRequest)
	session := ratio(ShardBySession)
	t.Logf("compression: request-sharded %.2fx, session-sharded %.2fx", random, session)
	if session <= random*1.1 {
		t.Fatalf("session sharding ratio %.3f not meaningfully above random %.3f", session, random)
	}
}

func TestShardLoadsReasonablyBalanced(t *testing.T) {
	c, err := New(Config{Shards: 8, Policy: ShardByRequest})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80000; i++ {
		if err := c.Append(Message{RequestID: int64(i)*2654435761 + 12345, Payload: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	loads := c.ShardLoads()
	var min, max int64 = 1 << 62, 0
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 {
		t.Fatalf("some shard received nothing: %v", loads)
	}
	if float64(max)/float64(min) > 4 {
		t.Fatalf("shard imbalance %v: max/min = %.1f", loads, float64(max)/float64(min))
	}
}

func TestSessionShardingKeepsSessionTogether(t *testing.T) {
	c, err := New(Config{Shards: 16, Policy: ShardBySession})
	if err != nil {
		t.Fatal(err)
	}
	// All messages of one session must land on one shard.
	for req := 0; req < 100; req++ {
		if err := c.Append(Message{RequestID: int64(req), SessionID: 777, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	loads := c.ShardLoads()
	nonZero := 0
	for _, l := range loads {
		if l > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("session spread across %d shards, want 1", nonZero)
	}
}

func TestStatsAndByteCounters(t *testing.T) {
	msgs := sessionLogStream(t, 20)
	c, err := New(Config{Shards: 2, Policy: ShardBySession, BlockBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var rawTotal int64
	for _, m := range msgs {
		rawTotal += int64(len(m.Payload) + 20)
		if err := c.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.RawBytes != rawTotal {
		t.Errorf("RawBytes = %d, want %d", st.RawBytes, rawTotal)
	}
	if st.CompressedBytes <= 0 || st.CompressedBytes >= st.RawBytes {
		t.Errorf("CompressedBytes = %d (raw %d), want compression", st.CompressedBytes, st.RawBytes)
	}
	if c.Bytes.RX.Value() != rawTotal {
		t.Errorf("RX = %d, want %d", c.Bytes.RX.Value(), rawTotal)
	}
	// Consume should account TX as compressed bytes.
	if err := c.Consume(func(Message) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Bytes.TX.Value(); got != st.CompressedBytes {
		t.Errorf("TX = %d, want %d", got, st.CompressedBytes)
	}
	if st.Messages != int64(len(msgs)) {
		t.Errorf("Messages = %d, want %d", st.Messages, len(msgs))
	}
}

func TestConsumeCallbackError(t *testing.T) {
	c, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(Message{RequestID: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop")
	if err := c.Consume(func(Message) error { return wantErr }); err != wantErr {
		t.Fatalf("Consume error = %v, want %v", err, wantErr)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0}); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestRingDeterministicAndSorted(t *testing.T) {
	r := newHashRing(4)
	if !sort.SliceIsSorted(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash }) {
		t.Fatal("ring points not sorted")
	}
	for key := int64(0); key < 1000; key++ {
		a, b := r.shardFor(key), r.shardFor(key)
		if a != b {
			t.Fatalf("ring not deterministic for key %d", key)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("shard %d out of range", a)
		}
	}
}
