package scribe

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPropertyConsumeReturnsEverything: every appended message comes back
// exactly once from Consume, bit-identical, under both shard policies.
func TestPropertyConsumeReturnsEverything(t *testing.T) {
	prop := func(seed int64, policyBit bool, shardCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := ShardByRequest
		if policyBit {
			policy = ShardBySession
		}
		shards := int(shardCount%8) + 1
		c, err := New(Config{Shards: shards, Policy: policy, BlockBytes: 1 << 12})
		if err != nil {
			return false
		}

		n := rng.Intn(200) + 1
		sent := make(map[int64][]byte, n)
		for i := 0; i < n; i++ {
			payload := make([]byte, rng.Intn(256)+1)
			rng.Read(payload)
			m := Message{
				RequestID: int64(i),
				SessionID: rng.Int63n(16),
				Payload:   payload,
			}
			if err := c.Append(m); err != nil {
				return false
			}
			sent[m.RequestID] = append([]byte(nil), payload...)
		}

		got := map[int64][]byte{}
		if err := c.Consume(func(m Message) error {
			if _, dup := got[m.RequestID]; dup {
				return errDuplicate
			}
			got[m.RequestID] = append([]byte(nil), m.Payload...)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for id, want := range sent {
			if !bytes.Equal(got[id], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

var errDuplicate = &duplicateError{}

type duplicateError struct{}

func (*duplicateError) Error() string { return "duplicate message" }

// TestPropertyShardLoadsCoverAllMessages: shard load counters sum to the
// appended message count.
func TestPropertyShardLoadsCoverAllMessages(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{Shards: 4, Policy: ShardBySession})
		if err != nil {
			return false
		}
		n := rng.Intn(300) + 1
		for i := 0; i < n; i++ {
			if err := c.Append(Message{
				RequestID: rng.Int63(),
				SessionID: rng.Int63n(32),
				Payload:   []byte("x"),
			}); err != nil {
				return false
			}
		}
		var total int64
		for _, l := range c.ShardLoads() {
			total += l
		}
		return total == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySessionAffinity: with session sharding, all of a session's
// messages land on one shard (the locality O1 relies on).
func TestPropertySessionAffinity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{Shards: 6, Policy: ShardBySession})
		if err != nil {
			return false
		}
		// Track which sessions were appended; consume and verify that the
		// per-shard session sets are disjoint by reconstructing shard
		// membership from the ring.
		sessions := map[int64]bool{}
		for i := 0; i < 100; i++ {
			sid := rng.Int63n(12)
			sessions[sid] = true
			if err := c.Append(Message{RequestID: rng.Int63(), SessionID: sid, Payload: []byte("p")}); err != nil {
				return false
			}
		}
		// The ring is deterministic: the same session must map to the
		// same shard on repeat lookups.
		var ids []int64
		for sid := range sessions {
			ids = append(ids, sid)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, sid := range ids {
			a := c.ring.shardFor(sid)
			b := c.ring.shardFor(sid)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
