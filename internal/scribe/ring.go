// Package scribe simulates the distributed message bus the paper's data
// generation tier logs into (Karpathiotakis et al. 2019). Inference servers
// append raw log messages; Scribe consistently hashes each message's shard
// key to a physical shard, which buffers and compresses blocks of messages.
//
// RecD's optimization O1 changes only the shard key — from the default
// (request-random) to the session ID — which co-locates a session's highly
// duplicated feature payloads in the same shard's compression blocks and
// thereby improves black-box compression ratios (paper §4.1: 1.50x → 2.25x).
package scribe

import (
	"fmt"
	"sort"
)

// hashRing is a consistent-hash ring with virtual nodes, mapping 64-bit
// shard keys to shard indices.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

const virtualNodesPerShard = 64

func hash64(v uint64) uint64 {
	// FNV-1a over the 8 bytes.
	h := uint64(14695981039346656037)
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= 1099511628211
	}
	return h
}

func newHashRing(shards int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, shards*virtualNodesPerShard)}
	for s := 0; s < shards; s++ {
		for v := 0; v < virtualNodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(uint64(s)<<20 | uint64(v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// shardFor maps a key to its shard: the first ring point clockwise from
// the key's hash.
func (r *hashRing) shardFor(key int64) int {
	h := hash64(uint64(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func (r *hashRing) validate(shards int) error {
	seen := make(map[int]bool)
	for _, p := range r.points {
		seen[p.shard] = true
	}
	if len(seen) != shards {
		return fmt.Errorf("scribe: ring covers %d of %d shards", len(seen), shards)
	}
	return nil
}
