// Package lakefs is a stand-in for the Tectonic distributed filesystem and
// the Hive table catalog that the paper's pipeline stores DWRF files in
// (paper §2.1). It is an in-memory blob store with precise read/write byte
// and IOPS accounting, which is what the paper's storage experiments
// measure (Table 3 "Read Bytes", §6.1 compression ratios), plus an
// hourly-partitioned table catalog with retention, mirroring the paper's
// "new table partitions are constantly landed and old partitions are
// deleted".
package lakefs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// Store is the canonical storage.Backend of the reproduction; keep it
// conforming as the interface evolves.
var _ storage.Backend = (*Store)(nil)

// Store is an exabyte-scale-filesystem stand-in: a flat namespace of
// immutable blobs with IO accounting. All methods are safe for concurrent
// use; readers in the reader tier share one Store.
type Store struct {
	mu    sync.RWMutex
	blobs map[string][]byte

	readBytes    int64
	writtenBytes int64
	readOps      int64
	writeOps     int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{blobs: make(map[string][]byte)}
}

// Put stores data under path, replacing any existing blob. The data is
// copied so the caller may reuse its buffer.
func (s *Store) Put(path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("lakefs: empty path")
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[path] = cp
	s.writtenBytes += int64(len(cp))
	s.writeOps++
	return nil
}

// Get returns the full blob at path. The returned slice must not be
// modified. The read is charged to the store's IO accounting.
func (s *Store) Get(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[path]
	if !ok {
		return nil, fmt.Errorf("lakefs: %q not found", path)
	}
	s.readBytes += int64(len(b))
	s.readOps++
	return b, nil
}

// ReadRange returns n bytes starting at off from the blob at path. Partial
// reads at end-of-blob return a short slice, matching object-store range
// read semantics. Only the returned bytes are charged.
func (s *Store) ReadRange(path string, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("lakefs: negative range %d+%d", off, n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[path]
	if !ok {
		return nil, fmt.Errorf("lakefs: %q not found", path)
	}
	if off > int64(len(b)) {
		return nil, fmt.Errorf("lakefs: offset %d beyond blob size %d", off, len(b))
	}
	end := off + n
	if end > int64(len(b)) {
		end = int64(len(b))
	}
	s.readBytes += end - off
	s.readOps++
	return b[off:end], nil
}

// Size reports the stored size of the blob at path without charging a read.
func (s *Store) Size(path string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[path]
	if !ok {
		return 0, fmt.Errorf("lakefs: %q not found", path)
	}
	return int64(len(b)), nil
}

// Exists reports whether a blob is stored at path.
func (s *Store) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[path]
	return ok
}

// Delete removes the blob at path. Deleting a missing blob is an error so
// retention bugs surface in tests.
func (s *Store) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[path]; !ok {
		return fmt.Errorf("lakefs: %q not found", path)
	}
	delete(s.blobs, path)
	return nil
}

// List returns all paths with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.blobs {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Stats is a snapshot of the store's IO and occupancy accounting.
type Stats struct {
	// ReadBytes and WrittenBytes count bytes moved by Get/ReadRange and
	// Put since the last ResetIO.
	ReadBytes    int64
	WrittenBytes int64
	// ReadOps and WriteOps count calls (the paper's "read IOPS demand").
	ReadOps  int64
	WriteOps int64
	// StoredBytes and Objects describe current occupancy.
	StoredBytes int64
	Objects     int64
}

// Stats returns a snapshot of the accounting counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		ReadBytes:    s.readBytes,
		WrittenBytes: s.writtenBytes,
		ReadOps:      s.readOps,
		WriteOps:     s.writeOps,
		Objects:      int64(len(s.blobs)),
	}
	for _, b := range s.blobs {
		st.StoredBytes += int64(len(b))
	}
	return st
}

// ResetIO zeroes the read/write counters (occupancy is unaffected). Used
// between experiment phases so Table 3 style measurements isolate the read
// path.
func (s *Store) ResetIO() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readBytes, s.writtenBytes, s.readOps, s.writeOps = 0, 0, 0, 0
}
