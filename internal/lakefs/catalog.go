package lakefs

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Catalog is the canonical storage.Catalog of the reproduction, and —
// since the landing path went live — also the canonical
// storage.TailingCatalog and storage.InvalidationNotifier.
var (
	_ storage.Catalog              = (*Catalog)(nil)
	_ storage.TailingCatalog       = (*Catalog)(nil)
	_ storage.InvalidationNotifier = (*Catalog)(nil)
)

// Catalog is the Hive-metastore stand-in: it maps table → hourly partition
// → file paths in a Store. Partition landing and retention mirror the
// paper's data generation pipeline, which constantly lands new hourly
// partitions and deletes old ones (§2.1).
//
// Every published file carries a catalog-wide publish sequence number, and
// the catalog keeps a generation counter bumped on every mutation. Both
// exist for live tailing: a Follow session snapshots the generation, waits
// for it to move (WaitChange), and asks for the files published since its
// last seen sequence (PublishedFiles) — an append-only delta query that
// stays correct even while retention drops leading partitions out from
// under the hour-ordered view. The sequence also fixes the ordering bug
// where files landed concurrently into one hour surfaced in arrival-race
// order: Files/AllFiles now sort each hour by publish sequence, so every
// observer sees one deterministic landing order.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*tableLog
	gen     uint64
	nextSeq uint64
	watch   chan struct{} // closed and replaced on every mutation
	subs    []func(paths []string)
}

// tableLog is one table's append-only publish log. Entries are appended
// in publish-sequence order and removed when retention drops their
// partition, so the slice is always sorted by Seq.
type tableLog struct {
	entries []storage.PublishedFile
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables: make(map[string]*tableLog),
		watch:  make(chan struct{}),
	}
}

// AddFile registers a file as part of table's partition for the given
// hour and returns its publish sequence number. Publication is atomic:
// callers land the blob in the store first, then AddFile, so a reader
// that observes the path can always open it.
func (c *Catalog) AddFile(table string, hour int64, path string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		t = &tableLog{}
		c.tables[table] = t
	}
	c.nextSeq++
	seq := c.nextSeq
	t.entries = append(t.entries, storage.PublishedFile{Path: path, Hour: hour, Seq: seq})
	c.bumpLocked()
	return seq
}

// bumpLocked advances the generation and wakes every WaitChange waiter.
// Callers hold c.mu.
func (c *Catalog) bumpLocked() {
	c.gen++
	close(c.watch)
	c.watch = make(chan struct{})
}

// Files returns the file paths of one partition, in publish-sequence
// (landing) order.
func (c *Catalog) Files(table string, hour int64) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("lakefs: table %q not found", table)
	}
	var fs []string
	for _, e := range t.entries {
		if e.Hour == hour {
			fs = append(fs, e.Path)
		}
	}
	if fs == nil {
		return nil, fmt.Errorf("lakefs: table %q has no partition for hour %d", table, hour)
	}
	return fs, nil
}

// AllFiles returns every file of every partition of the table, ordered by
// hour then publish sequence. This is the scan set of a training job that
// consumes the whole table.
func (c *Catalog) AllFiles(table string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("lakefs: table %q not found", table)
	}
	ordered := append([]storage.PublishedFile(nil), t.entries...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Hour != ordered[j].Hour {
			return ordered[i].Hour < ordered[j].Hour
		}
		return ordered[i].Seq < ordered[j].Seq
	})
	out := make([]string, len(ordered))
	for i, e := range ordered {
		out[i] = e.Path
	}
	return out, nil
}

// Generation returns the current catalog generation. It moves on every
// mutation (AddFile, DropPartition), so a tailer can cheaply detect "no
// news" without diffing file lists.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// WaitChange blocks until the generation exceeds since or ctx is done,
// returning the generation it observed. A since older than the current
// generation returns immediately — wakeups are level-triggered, not
// edge-triggered, so a tailer can never sleep through a landing.
func (c *Catalog) WaitChange(ctx context.Context, since uint64) (uint64, error) {
	for {
		c.mu.RLock()
		gen, w := c.gen, c.watch
		c.mu.RUnlock()
		if gen > since {
			return gen, nil
		}
		select {
		case <-w:
		case <-ctx.Done():
			return gen, ctx.Err()
		}
	}
}

// PublishedFiles returns the table's live files with publish sequence
// greater than afterSeq, in publish order. afterSeq 0 returns the full
// live log. Dropped files never reappear: retention removes their log
// entries, so the delta a tailer sees is exactly "landed since my cursor
// and still alive".
func (c *Catalog) PublishedFiles(table string, afterSeq uint64) ([]storage.PublishedFile, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("lakefs: table %q not found", table)
	}
	var out []storage.PublishedFile
	for _, e := range t.entries {
		if e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	return out, nil
}

// OnInvalidate registers fn to be called with the paths of every file the
// catalog drops (DropPartition / EnforceRetention), after the blobs are
// deleted from the store. Cache tiers subscribe here so retention cannot
// leave them serving data the store no longer holds. Subscribers must not
// call back into the catalog.
func (c *Catalog) OnInvalidate(fn func(paths []string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, fn)
}

// Partitions returns the hours that currently have a landed partition,
// sorted ascending.
func (c *Catalog) Partitions(table string) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t := c.tables[table]
	if t == nil {
		return nil
	}
	seen := make(map[int64]bool)
	var hours []int64
	for _, e := range t.entries {
		if !seen[e.Hour] {
			seen[e.Hour] = true
			hours = append(hours, e.Hour)
		}
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	return hours
}

// DropPartition removes a partition from the catalog, deletes its files
// from the store (retention), and notifies invalidation subscribers so
// cache tiers evict the dropped files. It returns the number of files
// deleted.
//
// Ordering matters for coherence: the files leave the catalog first (new
// sessions cannot plan over them), then the store (new reads fail rather
// than refill a cache), and only then are subscribers notified — so a
// compute that raced the delete and is still in flight at notification
// time is doomed rather than retained.
func (c *Catalog) DropPartition(store *Store, table string, hour int64) (int, error) {
	c.mu.Lock()
	t, ok := c.tables[table]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("lakefs: table %q not found", table)
	}
	var dropped []string
	kept := t.entries[:0]
	for _, e := range t.entries {
		if e.Hour == hour {
			dropped = append(dropped, e.Path)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	c.bumpLocked()
	subs := append([]func(paths []string){}, c.subs...)
	c.mu.Unlock()

	for _, f := range dropped {
		if err := store.Delete(f); err != nil {
			return 0, err
		}
	}
	if len(dropped) > 0 {
		for _, fn := range subs {
			fn(dropped)
		}
	}
	return len(dropped), nil
}

// EnforceRetention drops the oldest partitions of the table until at most
// keep remain, returning the hours dropped.
func (c *Catalog) EnforceRetention(store *Store, table string, keep int) ([]int64, error) {
	hours := c.Partitions(table)
	if len(hours) <= keep {
		return nil, nil
	}
	drop := hours[:len(hours)-keep]
	for _, h := range drop {
		if _, err := c.DropPartition(store, table, h); err != nil {
			return nil, err
		}
	}
	return drop, nil
}

// Tables returns the registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
