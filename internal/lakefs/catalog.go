package lakefs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Catalog is the canonical storage.Catalog of the reproduction.
var _ storage.Catalog = (*Catalog)(nil)

// Catalog is the Hive-metastore stand-in: it maps table → hourly partition
// → file paths in a Store. Partition landing and retention mirror the
// paper's data generation pipeline, which constantly lands new hourly
// partitions and deletes old ones (§2.1).
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]map[int64][]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]map[int64][]string)}
}

// AddFile registers a file as part of table's partition for the given hour.
func (c *Catalog) AddFile(table string, hour int64, path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		t = make(map[int64][]string)
		c.tables[table] = t
	}
	t[hour] = append(t[hour], path)
}

// Files returns the file paths of one partition, in landing order.
func (c *Catalog) Files(table string, hour int64) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("lakefs: table %q not found", table)
	}
	fs, ok := t[hour]
	if !ok {
		return nil, fmt.Errorf("lakefs: table %q has no partition for hour %d", table, hour)
	}
	return append([]string(nil), fs...), nil
}

// AllFiles returns every file of every partition of the table, ordered by
// hour then landing order. This is the scan set of a training job that
// consumes the whole table.
func (c *Catalog) AllFiles(table string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("lakefs: table %q not found", table)
	}
	hours := make([]int64, 0, len(t))
	for h := range t {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	var out []string
	for _, h := range hours {
		out = append(out, t[h]...)
	}
	return out, nil
}

// Partitions returns the hours that currently have a landed partition,
// sorted ascending.
func (c *Catalog) Partitions(table string) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t := c.tables[table]
	hours := make([]int64, 0, len(t))
	for h := range t {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	return hours
}

// DropPartition removes a partition from the catalog and deletes its files
// from the store (retention). It returns the number of files deleted.
func (c *Catalog) DropPartition(store *Store, table string, hour int64) (int, error) {
	c.mu.Lock()
	t, ok := c.tables[table]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("lakefs: table %q not found", table)
	}
	files := t[hour]
	delete(t, hour)
	c.mu.Unlock()

	for _, f := range files {
		if err := store.Delete(f); err != nil {
			return 0, err
		}
	}
	return len(files), nil
}

// EnforceRetention drops the oldest partitions of the table until at most
// keep remain, returning the hours dropped.
func (c *Catalog) EnforceRetention(store *Store, table string, keep int) ([]int64, error) {
	hours := c.Partitions(table)
	if len(hours) <= keep {
		return nil, nil
	}
	drop := hours[:len(hours)-keep]
	for _, h := range drop {
		if _, err := c.DropPartition(store, table, h); err != nil {
			return nil, err
		}
	}
	return drop, nil
}

// Tables returns the registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
