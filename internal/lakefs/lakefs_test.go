package lakefs

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	data := []byte("hello tectonic")
	if err := s.Put("a/b", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestPutCopiesData(t *testing.T) {
	s := NewStore()
	data := []byte("immutable")
	if err := s.Put("p", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := s.Get("p")
	if got[0] != 'i' {
		t.Fatal("Put did not copy caller's buffer")
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("expected error for missing blob")
	}
}

func TestPutEmptyPath(t *testing.T) {
	s := NewStore()
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("expected error for empty path")
	}
}

func TestReadRange(t *testing.T) {
	s := NewStore()
	if err := s.Put("r", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange("r", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "234" {
		t.Fatalf("got %q want 234", got)
	}
	// Short read at tail.
	got, err = s.ReadRange("r", 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "89" {
		t.Fatalf("got %q want 89", got)
	}
	// Offset past end is an error.
	if _, err := s.ReadRange("r", 11, 1); err == nil {
		t.Fatal("expected error for offset past end")
	}
	// Negative range is an error.
	if _, err := s.ReadRange("r", -1, 1); err == nil {
		t.Fatal("expected error for negative offset")
	}
}

func TestIOAccounting(t *testing.T) {
	s := NewStore()
	if err := s.Put("x", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRange("x", 0, 40); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WrittenBytes != 100 || st.WriteOps != 1 {
		t.Fatalf("write accounting: %+v", st)
	}
	if st.ReadBytes != 140 || st.ReadOps != 2 {
		t.Fatalf("read accounting: %+v", st)
	}
	if st.StoredBytes != 100 || st.Objects != 1 {
		t.Fatalf("occupancy: %+v", st)
	}

	s.ResetIO()
	st = s.Stats()
	if st.ReadBytes != 0 || st.WrittenBytes != 0 || st.ReadOps != 0 || st.WriteOps != 0 {
		t.Fatalf("ResetIO did not zero counters: %+v", st)
	}
	if st.StoredBytes != 100 {
		t.Fatalf("ResetIO should not affect occupancy: %+v", st)
	}
}

func TestSizeNoCharge(t *testing.T) {
	s := NewStore()
	if err := s.Put("x", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	s.ResetIO()
	n, err := s.Size("x")
	if err != nil || n != 64 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if st := s.Stats(); st.ReadBytes != 0 || st.ReadOps != 0 {
		t.Fatalf("Size charged a read: %+v", st)
	}
}

func TestDeleteAndList(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"t/1/a", "t/1/b", "t/2/a", "u/x"} {
		if err := s.Put(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List("t/1/")
	if len(got) != 2 || got[0] != "t/1/a" || got[1] != "t/1/b" {
		t.Fatalf("List = %v", got)
	}
	if err := s.Delete("t/1/a"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("t/1/a") {
		t.Fatal("blob still exists after delete")
	}
	if err := s.Delete("t/1/a"); err == nil {
		t.Fatal("expected error deleting missing blob")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("c/%d", i)
			if err := s.Put(p, make([]byte, 10)); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Get(p); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Objects != 16 {
		t.Fatalf("expected 16 objects, got %d", st.Objects)
	}
}

func TestCatalogPartitions(t *testing.T) {
	c := NewCatalog()
	c.AddFile("tbl", 2, "tbl/hour=2/a")
	c.AddFile("tbl", 1, "tbl/hour=1/a")
	c.AddFile("tbl", 1, "tbl/hour=1/b")

	hours := c.Partitions("tbl")
	if len(hours) != 2 || hours[0] != 1 || hours[1] != 2 {
		t.Fatalf("Partitions = %v", hours)
	}
	files, err := c.Files("tbl", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "tbl/hour=1/a" {
		t.Fatalf("Files = %v", files)
	}
	all, err := c.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[2] != "tbl/hour=2/a" {
		t.Fatalf("AllFiles = %v", all)
	}
	if _, err := c.Files("tbl", 99); err == nil {
		t.Fatal("expected error for missing partition")
	}
	if _, err := c.Files("missing", 1); err == nil {
		t.Fatal("expected error for missing table")
	}
}

func TestCatalogRetention(t *testing.T) {
	s := NewStore()
	c := NewCatalog()
	for h := int64(0); h < 5; h++ {
		p := fmt.Sprintf("tbl/hour=%d/a", h)
		if err := s.Put(p, []byte("data")); err != nil {
			t.Fatal(err)
		}
		c.AddFile("tbl", h, p)
	}
	dropped, err := c.EnforceRetention(s, "tbl", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 3 || dropped[0] != 0 || dropped[2] != 2 {
		t.Fatalf("dropped = %v", dropped)
	}
	if got := c.Partitions("tbl"); len(got) != 2 || got[0] != 3 {
		t.Fatalf("remaining partitions = %v", got)
	}
	if s.Exists("tbl/hour=0/a") || !s.Exists("tbl/hour=4/a") {
		t.Fatal("retention deleted wrong blobs")
	}
	// Retention with enough room is a no-op.
	dropped, err = c.EnforceRetention(s, "tbl", 10)
	if err != nil || dropped != nil {
		t.Fatalf("no-op retention: %v, %v", dropped, err)
	}
}

func TestCatalogTables(t *testing.T) {
	c := NewCatalog()
	c.AddFile("b", 0, "b/f")
	c.AddFile("a", 0, "a/f")
	if got := c.Tables(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tables = %v", got)
	}
}

// TestConcurrentLandingOrder pins the AddFile ordering fix: files landed
// concurrently into one hour surface from Files/AllFiles in publish-
// sequence order — the order AddFile returned — not in map-iteration or
// arrival-race order, and every observer sees the same order.
func TestConcurrentLandingOrder(t *testing.T) {
	c := NewCatalog()
	const writers, perWriter = 8, 16
	type landed struct {
		seq  uint64
		path string
	}
	results := make([][]landed, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := fmt.Sprintf("tbl/hour=0/w%d-%03d.dwrf", w, i)
				results[w] = append(results[w], landed{seq: c.AddFile("tbl", 0, p), path: p})
			}
		}(w)
	}
	wg.Wait()

	// The publish sequence totally orders the landings; Files must agree.
	bySeq := make(map[uint64]string, writers*perWriter)
	for _, rs := range results {
		for _, r := range rs {
			if prev, dup := bySeq[r.seq]; dup {
				t.Fatalf("sequence %d handed to both %q and %q", r.seq, prev, r.path)
			}
			bySeq[r.seq] = r.path
		}
	}
	files, err := c.Files("tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != writers*perWriter {
		t.Fatalf("Files returned %d paths, want %d", len(files), writers*perWriter)
	}
	pubs, err := c.PublishedFiles("tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	all, err := c.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	for i, pf := range pubs {
		if i > 0 && pubs[i-1].Seq >= pf.Seq {
			t.Fatalf("publish log out of order at %d: %d then %d", i, pubs[i-1].Seq, pf.Seq)
		}
		if want := bySeq[pf.Seq]; pf.Path != want || files[i] != want || all[i] != want {
			t.Fatalf("index %d: log %q, Files %q, AllFiles %q, want %q (seq %d)",
				i, pf.Path, files[i], all[i], want, pf.Seq)
		}
	}
}

// TestCatalogTailing: Generation moves on every mutation, WaitChange is
// level-triggered, and PublishedFiles returns exactly the delta past a
// cursor — with retention-dropped files never reappearing in it.
func TestCatalogTailing(t *testing.T) {
	s := NewStore()
	c := NewCatalog()
	g0 := c.Generation()
	seal := func(hour int64, name string) {
		path := fmt.Sprintf("tbl/hour=%d/%s", hour, name)
		if err := s.Put(path, []byte("x")); err != nil {
			t.Fatal(err)
		}
		c.AddFile("tbl", hour, path)
	}
	seal(0, "a")
	seal(0, "b")
	if g := c.Generation(); g != g0+2 {
		t.Fatalf("generation %d after two landings from %d", g, g0)
	}
	// Level-triggered: a stale cursor returns immediately.
	gen, err := c.WaitChange(context.Background(), g0)
	if err != nil || gen != g0+2 {
		t.Fatalf("WaitChange(stale) = %d, %v", gen, err)
	}
	// Blocking wait observes the next landing.
	type wake struct {
		gen uint64
		err error
	}
	woke := make(chan wake, 1)
	go func() {
		g, err := c.WaitChange(context.Background(), gen)
		woke <- wake{g, err}
	}()
	seal(3600, "c")
	w := <-woke
	if w.err != nil || w.gen != gen+1 {
		t.Fatalf("WaitChange woke with %d, %v; want %d", w.gen, w.err, gen+1)
	}
	// Delta query: everything past the second landing's sequence.
	pubs, err := c.PublishedFiles("tbl", 2)
	if err != nil || len(pubs) != 1 || pubs[0].Path != "tbl/hour=3600/c" {
		t.Fatalf("PublishedFiles(2) = %+v, %v", pubs, err)
	}
	// Retention drops hour 0; the delta past cursor 0 holds only live files,
	// and the generation moved again.
	if _, err := c.DropPartition(s, "tbl", 0); err != nil {
		t.Fatal(err)
	}
	pubs, err = c.PublishedFiles("tbl", 0)
	if err != nil || len(pubs) != 1 || pubs[0].Path != "tbl/hour=3600/c" {
		t.Fatalf("post-drop PublishedFiles(0) = %+v, %v", pubs, err)
	}
	if g := c.Generation(); g != gen+2 {
		t.Fatalf("generation %d after drop, want %d", g, gen+2)
	}
	// A cancelled wait returns promptly with ctx.Err.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.WaitChange(ctx, c.Generation()); err == nil {
		t.Fatal("WaitChange survived a cancelled context")
	}
}

// TestDropPartitionInvalidation pins the stale-cache-after-retention fix
// at the catalog layer: DropPartition deletes the blobs from the store
// BEFORE notifying invalidation subscribers, and hands subscribers
// exactly the dropped paths — so a cache tier that evicts on the
// notification can never refill from a blob that still exists.
func TestDropPartitionInvalidation(t *testing.T) {
	s := NewStore()
	c := NewCatalog()
	for _, hour := range []int64{0, 3600} {
		for i := 0; i < 3; i++ {
			path := fmt.Sprintf("tbl/hour=%d/part-%d", hour, i)
			if err := s.Put(path, []byte("x")); err != nil {
				t.Fatal(err)
			}
			c.AddFile("tbl", hour, path)
		}
	}
	var mu sync.Mutex
	var got [][]string
	deletedFirst := true
	c.OnInvalidate(func(paths []string) {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range paths {
			if s.Exists(p) {
				deletedFirst = false
			}
		}
		got = append(got, append([]string(nil), paths...))
	})
	n, err := c.DropPartition(s, "tbl", 0)
	if err != nil || n != 3 {
		t.Fatalf("DropPartition = %d, %v", n, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("subscriber saw %v, want one notification of 3 paths", got)
	}
	for i, p := range got[0] {
		if want := fmt.Sprintf("tbl/hour=0/part-%d", i); p != want {
			t.Fatalf("notified path %q, want %q", p, want)
		}
	}
	if !deletedFirst {
		t.Fatal("subscriber ran while dropped blobs still existed in the store")
	}
	// The surviving partition is untouched and a second drop of the same
	// hour is a clean no-op with no spurious notification.
	if fs, err := c.Files("tbl", 3600); err != nil || len(fs) != 3 {
		t.Fatalf("surviving partition: %v, %v", fs, err)
	}
	if n, err := c.DropPartition(s, "tbl", 0); err != nil || n != 0 {
		t.Fatalf("re-drop = %d, %v", n, err)
	}
	if len(got) != 1 {
		t.Fatal("empty drop notified subscribers")
	}
}
