package lakefs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	data := []byte("hello tectonic")
	if err := s.Put("a/b", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestPutCopiesData(t *testing.T) {
	s := NewStore()
	data := []byte("immutable")
	if err := s.Put("p", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := s.Get("p")
	if got[0] != 'i' {
		t.Fatal("Put did not copy caller's buffer")
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("expected error for missing blob")
	}
}

func TestPutEmptyPath(t *testing.T) {
	s := NewStore()
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("expected error for empty path")
	}
}

func TestReadRange(t *testing.T) {
	s := NewStore()
	if err := s.Put("r", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange("r", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "234" {
		t.Fatalf("got %q want 234", got)
	}
	// Short read at tail.
	got, err = s.ReadRange("r", 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "89" {
		t.Fatalf("got %q want 89", got)
	}
	// Offset past end is an error.
	if _, err := s.ReadRange("r", 11, 1); err == nil {
		t.Fatal("expected error for offset past end")
	}
	// Negative range is an error.
	if _, err := s.ReadRange("r", -1, 1); err == nil {
		t.Fatal("expected error for negative offset")
	}
}

func TestIOAccounting(t *testing.T) {
	s := NewStore()
	if err := s.Put("x", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRange("x", 0, 40); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WrittenBytes != 100 || st.WriteOps != 1 {
		t.Fatalf("write accounting: %+v", st)
	}
	if st.ReadBytes != 140 || st.ReadOps != 2 {
		t.Fatalf("read accounting: %+v", st)
	}
	if st.StoredBytes != 100 || st.Objects != 1 {
		t.Fatalf("occupancy: %+v", st)
	}

	s.ResetIO()
	st = s.Stats()
	if st.ReadBytes != 0 || st.WrittenBytes != 0 || st.ReadOps != 0 || st.WriteOps != 0 {
		t.Fatalf("ResetIO did not zero counters: %+v", st)
	}
	if st.StoredBytes != 100 {
		t.Fatalf("ResetIO should not affect occupancy: %+v", st)
	}
}

func TestSizeNoCharge(t *testing.T) {
	s := NewStore()
	if err := s.Put("x", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	s.ResetIO()
	n, err := s.Size("x")
	if err != nil || n != 64 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if st := s.Stats(); st.ReadBytes != 0 || st.ReadOps != 0 {
		t.Fatalf("Size charged a read: %+v", st)
	}
}

func TestDeleteAndList(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"t/1/a", "t/1/b", "t/2/a", "u/x"} {
		if err := s.Put(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List("t/1/")
	if len(got) != 2 || got[0] != "t/1/a" || got[1] != "t/1/b" {
		t.Fatalf("List = %v", got)
	}
	if err := s.Delete("t/1/a"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("t/1/a") {
		t.Fatal("blob still exists after delete")
	}
	if err := s.Delete("t/1/a"); err == nil {
		t.Fatal("expected error deleting missing blob")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("c/%d", i)
			if err := s.Put(p, make([]byte, 10)); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Get(p); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Objects != 16 {
		t.Fatalf("expected 16 objects, got %d", st.Objects)
	}
}

func TestCatalogPartitions(t *testing.T) {
	c := NewCatalog()
	c.AddFile("tbl", 2, "tbl/hour=2/a")
	c.AddFile("tbl", 1, "tbl/hour=1/a")
	c.AddFile("tbl", 1, "tbl/hour=1/b")

	hours := c.Partitions("tbl")
	if len(hours) != 2 || hours[0] != 1 || hours[1] != 2 {
		t.Fatalf("Partitions = %v", hours)
	}
	files, err := c.Files("tbl", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "tbl/hour=1/a" {
		t.Fatalf("Files = %v", files)
	}
	all, err := c.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[2] != "tbl/hour=2/a" {
		t.Fatalf("AllFiles = %v", all)
	}
	if _, err := c.Files("tbl", 99); err == nil {
		t.Fatal("expected error for missing partition")
	}
	if _, err := c.Files("missing", 1); err == nil {
		t.Fatal("expected error for missing table")
	}
}

func TestCatalogRetention(t *testing.T) {
	s := NewStore()
	c := NewCatalog()
	for h := int64(0); h < 5; h++ {
		p := fmt.Sprintf("tbl/hour=%d/a", h)
		if err := s.Put(p, []byte("data")); err != nil {
			t.Fatal(err)
		}
		c.AddFile("tbl", h, p)
	}
	dropped, err := c.EnforceRetention(s, "tbl", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 3 || dropped[0] != 0 || dropped[2] != 2 {
		t.Fatalf("dropped = %v", dropped)
	}
	if got := c.Partitions("tbl"); len(got) != 2 || got[0] != 3 {
		t.Fatalf("remaining partitions = %v", got)
	}
	if s.Exists("tbl/hour=0/a") || !s.Exists("tbl/hour=4/a") {
		t.Fatal("retention deleted wrong blobs")
	}
	// Retention with enough room is a no-op.
	dropped, err = c.EnforceRetention(s, "tbl", 10)
	if err != nil || dropped != nil {
		t.Fatalf("no-op retention: %v, %v", dropped, err)
	}
}

func TestCatalogTables(t *testing.T) {
	c := NewCatalog()
	c.AddFile("b", 0, "b/f")
	c.AddFile("a", 0, "a/f")
	if got := c.Tables(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tables = %v", got)
	}
}
