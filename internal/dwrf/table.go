package dwrf

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/lakefs"
)

// TableOptions configures WritePartition.
type TableOptions struct {
	Writer WriterOptions
	// RowsPerFile splits a partition into multiple files; 0 writes a
	// single file. Production tables are many-file; the reader tier
	// distributes file splits across readers.
	RowsPerFile int
}

// PartitionStats aggregates the FileStats of every file in one landed
// partition.
type PartitionStats struct {
	Files           int
	Rows            int
	RawBytes        int64
	CompressedBytes int64
}

// CompressionRatio is raw over compressed across the whole partition.
func (s PartitionStats) CompressionRatio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.CompressedBytes)
}

// Add folds one file's stats into the partition totals.
func (s *PartitionStats) Add(fs FileStats) {
	s.Files++
	s.Rows += fs.Rows
	s.RawBytes += fs.RawBytes
	s.CompressedBytes += fs.CompressedBytes
}

// WritePartition encodes samples into one or more DWRF files, stores them
// in the blob store, and registers them in the catalog under
// table/hour. File paths follow "<table>/hour=<hour>/part-<n>.dwrf".
func WritePartition(store *lakefs.Store, catalog *lakefs.Catalog, table string, hour int64,
	schema *datagen.Schema, samples []datagen.Sample, opts TableOptions) (PartitionStats, error) {

	rowsPerFile := opts.RowsPerFile
	if rowsPerFile <= 0 {
		rowsPerFile = len(samples)
		if rowsPerFile == 0 {
			rowsPerFile = 1
		}
	}

	var stats PartitionStats
	part := 0
	for start := 0; start < len(samples) || part == 0; start += rowsPerFile {
		end := start + rowsPerFile
		if end > len(samples) {
			end = len(samples)
		}
		w, err := NewFileWriter(schema, opts.Writer)
		if err != nil {
			return PartitionStats{}, err
		}
		if err := w.WriteRows(samples[start:end]); err != nil {
			return PartitionStats{}, err
		}
		data, fs, err := w.Finish()
		if err != nil {
			return PartitionStats{}, err
		}
		path := fmt.Sprintf("%s/hour=%d/part-%05d.dwrf", table, hour, part)
		if err := store.Put(path, data); err != nil {
			return PartitionStats{}, err
		}
		catalog.AddFile(table, hour, path)
		stats.Add(fs)
		part++
		if len(samples) == 0 {
			break
		}
	}
	return stats, nil
}

// ReadPartition reads every file of a partition back into samples, in
// catalog order. Reads are charged to the store's accounting.
func ReadPartition(store *lakefs.Store, catalog *lakefs.Catalog, table string, hour int64) ([]datagen.Sample, error) {
	files, err := catalog.Files(table, hour)
	if err != nil {
		return nil, err
	}
	var out []datagen.Sample
	for _, f := range files {
		data, err := store.Get(f)
		if err != nil {
			return nil, err
		}
		fr, err := OpenReader(data)
		if err != nil {
			return nil, fmt.Errorf("dwrf: %s: %w", f, err)
		}
		ss, err := fr.ReadAll()
		if err != nil {
			return nil, fmt.Errorf("dwrf: %s: %w", f, err)
		}
		out = append(out, ss...)
	}
	return out, nil
}
