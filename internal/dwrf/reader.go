package dwrf

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/datagen"
)

// FileReader decodes a DWRF file from memory. It parses the footer once
// and then serves stripe-granular reads, the unit the reader tier's fill
// stage operates on.
type FileReader struct {
	data    []byte
	stripes []stripeInfo
	keys    []string
	dense   int
	rows    int
}

// OpenReader parses the footer of a DWRF file.
func OpenReader(data []byte) (*FileReader, error) {
	if len(data) < len(magic)*2+4 {
		return nil, fmt.Errorf("dwrf: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("dwrf: bad header magic")
	}
	if string(data[len(data)-len(magic):]) != magic {
		return nil, fmt.Errorf("dwrf: bad trailer magic")
	}
	footerLen := int(binary.LittleEndian.Uint32(data[len(data)-8 : len(data)-4]))
	footerStart := len(data) - 8 - footerLen
	if footerLen < 0 || footerStart < len(magic) {
		return nil, fmt.Errorf("dwrf: invalid footer length %d", footerLen)
	}

	r := &byteReader{buf: data[footerStart : footerStart+footerLen]}
	nStripes, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dwrf: footer stripe count: %w", err)
	}
	if nStripes > uint64(len(data)) {
		return nil, fmt.Errorf("dwrf: implausible stripe count %d", nStripes)
	}
	fr := &FileReader{data: data}
	for i := uint64(0); i < nStripes; i++ {
		off, err1 := r.uvarint()
		length, err2 := r.uvarint()
		rows, err3 := r.uvarint()
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dwrf: footer stripe %d truncated", i)
		}
		if off+length > uint64(footerStart) || rows > maxStripeRows {
			return nil, fmt.Errorf("dwrf: stripe %d out of bounds", i)
		}
		fr.stripes = append(fr.stripes, stripeInfo{offset: int64(off), length: int64(length), rows: int(rows)})
		fr.rows += int(rows)
	}
	nKeys, err := r.uvarint()
	if err != nil || nKeys > maxColumns {
		return nil, fmt.Errorf("dwrf: footer key count invalid")
	}
	for i := uint64(0); i < nKeys; i++ {
		kl, err := r.uvarint()
		if err != nil || int(kl) > r.remaining() {
			return nil, fmt.Errorf("dwrf: footer key %d truncated", i)
		}
		fr.keys = append(fr.keys, string(r.buf[r.pos:r.pos+int(kl)]))
		r.pos += int(kl)
	}
	nDense, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dwrf: footer dense count: %w", err)
	}
	fr.dense = int(nDense)
	return fr, nil
}

// NumRows reports the total row count.
func (r *FileReader) NumRows() int { return r.rows }

// NumStripes reports the stripe count.
func (r *FileReader) NumStripes() int { return len(r.stripes) }

// SparseKeys returns the ordered sparse feature keys recorded in the footer.
func (r *FileReader) SparseKeys() []string { return append([]string(nil), r.keys...) }

// DenseCount returns the dense feature count recorded in the footer.
func (r *FileReader) DenseCount() int { return r.dense }

// StripeRows reports the row count of stripe i.
func (r *FileReader) StripeRows(i int) int { return r.stripes[i].rows }

// StripeByteRange returns the byte extent of stripe i within the file,
// for range reads against a blob store.
func (r *FileReader) StripeByteRange(i int) (offset, length int64) {
	return r.stripes[i].offset, r.stripes[i].length
}

// ReadStripe decodes stripe i back into samples.
func (r *FileReader) ReadStripe(i int) ([]datagen.Sample, error) {
	if i < 0 || i >= len(r.stripes) {
		return nil, fmt.Errorf("dwrf: stripe %d out of range [0,%d)", i, len(r.stripes))
	}
	st := r.stripes[i]
	return DecodeStripe(r.data[st.offset:st.offset+st.length], r.keys, r.dense)
}

// ReadAll decodes every stripe. See ReadAllContext.
func (r *FileReader) ReadAll() ([]datagen.Sample, error) {
	return r.ReadAllContext(context.Background())
}

// ReadAllContext decodes every stripe, honouring ctx cancellation between
// stripes. Stripes are independent (each carries its own compressed
// column streams and delta-encoding state), so files with more than one
// stripe decode them concurrently, bounded by GOMAXPROCS; results are
// stitched back in stripe order. On cancellation every decode worker
// stops before taking its next stripe and ctx.Err() is returned.
func (r *FileReader) ReadAllContext(ctx context.Context) ([]datagen.Sample, error) {
	if len(r.stripes) <= 1 {
		out := make([]datagen.Sample, 0, r.rows)
		for i := range r.stripes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ss, err := r.ReadStripe(i)
			if err != nil {
				return nil, err
			}
			out = append(out, ss...)
		}
		return out, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(r.stripes) {
		workers = len(r.stripes)
	}
	results := make([][]datagen.Sample, len(r.stripes))
	errs := make([]error, len(r.stripes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(r.stripes) {
					return
				}
				results[i], errs[i] = r.ReadStripe(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]datagen.Sample, 0, r.rows)
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// DecodeStripe decodes one stripe's bytes (as delimited by
// StripeByteRange) into samples. It is exported so the reader tier can
// range-read a stripe from the blob store and decode it without holding
// the whole file.
func DecodeStripe(stripe []byte, keys []string, dense int) ([]datagen.Sample, error) {
	r := &byteReader{buf: stripe}
	rowsU, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dwrf: stripe row count: %w", err)
	}
	nColsU, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dwrf: stripe column count: %w", err)
	}
	rows, nCols := int(rowsU), int(nColsU)
	if rows > maxStripeRows || nCols > maxColumns {
		return nil, fmt.Errorf("dwrf: implausible stripe header rows=%d cols=%d", rows, nCols)
	}
	if want := 2 + len(keys); nCols != want {
		return nil, fmt.Errorf("dwrf: stripe has %d columns, footer schema implies %d", nCols, want)
	}

	rawLens := make([]int, nCols)
	compLens := make([]int, nCols)
	for c := 0; c < nCols; c++ {
		rl, err1 := r.uvarint()
		cl, err2 := r.uvarint()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("dwrf: stripe header column %d truncated", c)
		}
		if rl > maxStreamBytes || cl > maxStreamBytes {
			return nil, fmt.Errorf("dwrf: column %d stream too large", c)
		}
		rawLens[c], compLens[c] = int(rl), int(cl)
	}

	streams := make([][]byte, nCols)
	bufs := make([]*[]byte, nCols)
	defer func() {
		for _, bp := range bufs {
			if bp != nil {
				streamBufPool.Put(bp)
			}
		}
	}()
	for c := 0; c < nCols; c++ {
		if compLens[c] > r.remaining() {
			return nil, fmt.Errorf("dwrf: column %d stream truncated", c)
		}
		bp := streamBufPool.Get().(*[]byte)
		bufs[c] = bp
		raw, err := decompressStream(*bp, r.buf[r.pos:r.pos+compLens[c]], rawLens[c])
		if err != nil {
			return nil, fmt.Errorf("dwrf: column %d: %w", c, err)
		}
		*bp = raw
		streams[c] = raw
		r.pos += compLens[c]
	}

	samples := make([]datagen.Sample, rows)

	// Column 0: metadata (delta-encoded session ID and timestamp).
	mr := &byteReader{buf: streams[0]}
	var prevSession, prevTS int64
	for i := 0; i < rows; i++ {
		ds, err1 := mr.varint()
		uid, err2 := mr.varint()
		rid, err3 := mr.varint()
		dts, err4 := mr.varint()
		lb, err5 := mr.ReadByte()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return nil, fmt.Errorf("dwrf: metadata row %d truncated", i)
		}
		prevSession += ds
		prevTS += dts
		samples[i].SessionID = prevSession
		samples[i].UserID = uid
		samples[i].RequestID = rid
		samples[i].Timestamp = prevTS
		samples[i].Label = int8(lb)
	}

	// Column 1: dense floats.
	dr := &byteReader{buf: streams[1]}
	for i := 0; i < rows; i++ {
		vec := make([]float32, dense)
		for j := 0; j < dense; j++ {
			f, err := dr.float32()
			if err != nil {
				return nil, fmt.Errorf("dwrf: dense row %d truncated", i)
			}
			vec[j] = f
		}
		samples[i].Dense = vec
		samples[i].Sparse = make([][]int64, len(keys))
	}

	// Sparse columns.
	for fi := range keys {
		sr := &byteReader{buf: streams[2+fi]}
		for i := 0; i < rows; i++ {
			n, err := sr.uvarint()
			if err != nil {
				return nil, fmt.Errorf("dwrf: sparse %q row %d length truncated", keys[fi], i)
			}
			if int(n) > sr.remaining() { // each value is ≥1 byte
				return nil, fmt.Errorf("dwrf: sparse %q row %d list too long (%d)", keys[fi], i, n)
			}
			lst := make([]int64, n)
			for j := range lst {
				v, err := sr.varint()
				if err != nil {
					return nil, fmt.Errorf("dwrf: sparse %q row %d value %d truncated", keys[fi], i, j)
				}
				lst[j] = v
			}
			samples[i].Sparse[fi] = lst
		}
	}
	return samples, nil
}
