package dwrf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
)

// randomSamples draws an arbitrary valid batch for the given schema.
func randomSamples(rng *rand.Rand, schema *datagen.Schema, n int) []datagen.Sample {
	out := make([]datagen.Sample, n)
	for i := range out {
		s := datagen.Sample{
			SessionID: rng.Int63n(1 << 20),
			UserID:    rng.Int63(),
			RequestID: rng.Int63(),
			Timestamp: rng.Int63n(1 << 40),
			Label:     int8(rng.Intn(2)),
			Sparse:    make([][]int64, len(schema.Sparse)),
			Dense:     make([]float32, schema.Dense),
		}
		for fi, f := range schema.Sparse {
			l := rng.Intn(f.MaxLen + 1) // include empty lists
			lst := make([]int64, l)
			for k := range lst {
				lst[k] = rng.Int63n(f.Cardinality)
			}
			s.Sparse[fi] = lst
		}
		for d := range s.Dense {
			s.Dense[d] = rng.Float32()*200 - 100
		}
		out[i] = s
	}
	return out
}

// TestPropertyRoundTrip: for arbitrary valid sample batches, writing a
// DWRF file and reading it back reproduces every row exactly, regardless
// of stripe size.
func TestPropertyRoundTrip(t *testing.T) {
	schema := testSchema()
	prop := func(seed int64, rows uint8, stripeRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rows%64) + 1
		stripe := int(stripeRows%16) + 1
		samples := randomSamples(rng, schema, n)

		w, err := NewFileWriter(schema, WriterOptions{StripeRows: stripe})
		if err != nil {
			return false
		}
		if err := w.WriteRows(samples); err != nil {
			return false
		}
		data, stats, err := w.Finish()
		if err != nil {
			return false
		}
		if stats.Rows != n {
			return false
		}
		r, err := OpenReader(data)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if !samplesEqual(got[i], samples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStripeDecodeMatchesReadAll: decoding stripes independently
// via byte ranges concatenates to the same rows as ReadAll.
func TestPropertyStripeDecodeMatchesReadAll(t *testing.T) {
	schema := testSchema()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := randomSamples(rng, schema, 40)
		w, _ := NewFileWriter(schema, WriterOptions{StripeRows: 7})
		if err := w.WriteRows(samples); err != nil {
			return false
		}
		data, _, err := w.Finish()
		if err != nil {
			return false
		}
		r, err := OpenReader(data)
		if err != nil {
			return false
		}
		var viaStripes []datagen.Sample
		for i := 0; i < r.NumStripes(); i++ {
			off, length := r.StripeByteRange(i)
			ss, err := DecodeStripe(data[off:off+length], r.SparseKeys(), r.DenseCount())
			if err != nil {
				return false
			}
			viaStripes = append(viaStripes, ss...)
		}
		all, err := r.ReadAll()
		if err != nil || len(all) != len(viaStripes) {
			return false
		}
		for i := range all {
			if !samplesEqual(all[i], viaStripes[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCompressedNotLarger: the compressed file is never wildly
// larger than its raw column streams (flate worst case adds a tiny
// per-block overhead).
func TestPropertyCompressedNotLarger(t *testing.T) {
	schema := testSchema()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := randomSamples(rng, schema, 32)
		w, _ := NewFileWriter(schema, WriterOptions{})
		if err := w.WriteRows(samples); err != nil {
			return false
		}
		_, stats, err := w.Finish()
		if err != nil {
			return false
		}
		// Footer + headers + flate overhead stay under 25% + 4KB.
		return stats.CompressedBytes <= stats.RawBytes+stats.RawBytes/4+4096
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
