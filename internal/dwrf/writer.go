package dwrf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"

	"repro/internal/datagen"
)

// FileWriter writes samples into a DWRF file held in memory. Rows are
// buffered until a stripe fills, then encoded column-by-column and
// compressed. Call Finish to obtain the file bytes and stats.
//
// Column layout: column 0 is row metadata (session/user/request IDs,
// timestamp, label), column 1 is the dense feature vector, and columns
// 2..2+F-1 are the flattened sparse feature columns, one per schema
// feature — matching the paper's "feature columns are first flattened"
// (§2.1).
type FileWriter struct {
	schema *datagen.Schema
	opts   WriterOptions

	buf     bytes.Buffer
	pending []datagen.Sample
	stripes []stripeInfo

	rows    int
	colRaw  []int64
	colComp []int64

	// Per-stripe encode/compress scratch, reset (not reallocated) between
	// stripes: raw column streams, compressed column streams, the shared
	// flate writer, its output buffer, and the stripe header.
	streams [][]byte
	comp    [][]byte
	fw      *flate.Writer
	compBuf bytes.Buffer
	hdr     []byte

	finished bool
}

// NewFileWriter creates a writer for the given schema.
func NewFileWriter(schema *datagen.Schema, opts WriterOptions) (*FileWriter, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("dwrf: nil schema")
	}
	w := &FileWriter{
		schema:  schema,
		opts:    opts,
		colRaw:  make([]int64, 2+len(schema.Sparse)),
		colComp: make([]int64, 2+len(schema.Sparse)),
	}
	w.buf.WriteString(magic)
	return w, nil
}

// WriteRow appends one sample. The sample must conform to the schema.
func (w *FileWriter) WriteRow(s datagen.Sample) error {
	if w.finished {
		return fmt.Errorf("dwrf: write after Finish")
	}
	if len(s.Sparse) != len(w.schema.Sparse) {
		return fmt.Errorf("dwrf: sample has %d sparse features, schema has %d", len(s.Sparse), len(w.schema.Sparse))
	}
	if len(s.Dense) != w.schema.Dense {
		return fmt.Errorf("dwrf: sample has %d dense features, schema has %d", len(s.Dense), w.schema.Dense)
	}
	w.pending = append(w.pending, s)
	w.rows++
	if len(w.pending) >= w.opts.StripeRows {
		return w.flushStripe()
	}
	return nil
}

// WriteRows appends a batch of samples.
func (w *FileWriter) WriteRows(samples []datagen.Sample) error {
	for _, s := range samples {
		if err := w.WriteRow(s); err != nil {
			return err
		}
	}
	return nil
}

// encodeStripeColumns encodes the pending rows into one raw byte stream
// per column. Streams are built in the writer's reusable scratch buffers,
// so steady-state stripe encoding allocates nothing.
func (w *FileWriter) encodeStripeColumns() [][]byte {
	nCols := 2 + len(w.schema.Sparse)
	if w.streams == nil {
		w.streams = make([][]byte, nCols)
	}
	streams := w.streams

	// Column 0: metadata. Session IDs and timestamps are delta-encoded —
	// clustered tables have long runs of equal session IDs and ascending
	// timestamps, which delta+varint shrinks dramatically even before
	// flate sees the stream.
	meta := streams[0][:0]
	var prevSession, prevTS int64
	for _, s := range w.pending {
		meta = putVarint(meta, s.SessionID-prevSession)
		prevSession = s.SessionID
		meta = putVarint(meta, s.UserID)
		meta = putVarint(meta, s.RequestID)
		meta = putVarint(meta, s.Timestamp-prevTS)
		prevTS = s.Timestamp
		meta = append(meta, byte(s.Label))
	}
	streams[0] = meta

	// Column 1: dense floats, raw little-endian.
	dense := streams[1][:0]
	for _, s := range w.pending {
		for _, f := range s.Dense {
			dense = putFloat32(dense, f)
		}
	}
	streams[1] = dense

	// Sparse columns: per row a varint length then zigzag varint IDs.
	for fi := range w.schema.Sparse {
		col := streams[2+fi][:0]
		for _, s := range w.pending {
			lst := s.Sparse[fi]
			col = putUvarint(col, uint64(len(lst)))
			for _, id := range lst {
				col = putVarint(col, id)
			}
		}
		streams[2+fi] = col
	}
	return streams
}

// compressInto flate-compresses raw into dst's storage using the writer's
// reused flate state, returning the (possibly regrown) compressed slice.
func (w *FileWriter) compressInto(dst, raw []byte) ([]byte, error) {
	w.compBuf.Reset()
	if w.fw == nil {
		level := w.opts.CompressionLevel
		if level == 0 {
			level = flate.DefaultCompression
		}
		fw, err := flate.NewWriter(&w.compBuf, level)
		if err != nil {
			return nil, fmt.Errorf("dwrf: flate init: %w", err)
		}
		w.fw = fw
	} else {
		w.fw.Reset(&w.compBuf)
	}
	if _, err := w.fw.Write(raw); err != nil {
		return nil, fmt.Errorf("dwrf: compress: %w", err)
	}
	if err := w.fw.Close(); err != nil {
		return nil, fmt.Errorf("dwrf: compress close: %w", err)
	}
	return append(dst[:0], w.compBuf.Bytes()...), nil
}

// flushStripe encodes, compresses, and appends the pending rows as one
// stripe. Stripe wire format:
//
//	uvarint rowCount
//	uvarint columnCount
//	columnCount × { uvarint rawLen, uvarint compLen }
//	columnCount × compressed stream bytes
func (w *FileWriter) flushStripe() error {
	if len(w.pending) == 0 {
		return nil
	}
	streams := w.encodeStripeColumns()

	if w.comp == nil {
		w.comp = make([][]byte, len(streams))
	}
	comp := w.comp
	for i, raw := range streams {
		c, err := w.compressInto(comp[i], raw)
		if err != nil {
			return err
		}
		comp[i] = c
		w.colRaw[i] += int64(len(raw))
		w.colComp[i] += int64(len(c))
	}

	offset := int64(w.buf.Len())
	hdr := w.hdr[:0]
	hdr = putUvarint(hdr, uint64(len(w.pending)))
	hdr = putUvarint(hdr, uint64(len(streams)))
	for i := range streams {
		hdr = putUvarint(hdr, uint64(len(streams[i])))
		hdr = putUvarint(hdr, uint64(len(comp[i])))
	}
	w.buf.Write(hdr)
	w.hdr = hdr
	for _, c := range comp {
		w.buf.Write(c)
	}

	w.stripes = append(w.stripes, stripeInfo{
		offset: offset,
		length: int64(w.buf.Len()) - offset,
		rows:   len(w.pending),
	})
	w.pending = w.pending[:0]
	return nil
}

// Finish flushes the last stripe, writes the footer, and returns the file
// bytes and stats. The writer must not be used afterwards.
//
// Footer wire format (uncompressed):
//
//	uvarint stripeCount
//	stripeCount × { uvarint offset, uvarint length, uvarint rows }
//	uvarint sparseFeatureCount
//	sparseFeatureCount × { uvarint keyLen, key bytes }
//	uvarint denseCount
//	fixed32 footerLen | magic
func (w *FileWriter) Finish() ([]byte, FileStats, error) {
	if w.finished {
		return nil, FileStats{}, fmt.Errorf("dwrf: Finish called twice")
	}
	if err := w.flushStripe(); err != nil {
		return nil, FileStats{}, err
	}
	w.finished = true

	var footer []byte
	footer = putUvarint(footer, uint64(len(w.stripes)))
	for _, st := range w.stripes {
		footer = putUvarint(footer, uint64(st.offset))
		footer = putUvarint(footer, uint64(st.length))
		footer = putUvarint(footer, uint64(st.rows))
	}
	footer = putUvarint(footer, uint64(len(w.schema.Sparse)))
	for _, f := range w.schema.Sparse {
		footer = putUvarint(footer, uint64(len(f.Key)))
		footer = append(footer, f.Key...)
	}
	footer = putUvarint(footer, uint64(w.schema.Dense))

	w.buf.Write(footer)
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(footer)))
	copy(tail[4:], magic)
	w.buf.Write(tail[:])

	data := w.buf.Bytes()
	stats := FileStats{
		Rows:            w.rows,
		Stripes:         len(w.stripes),
		CompressedBytes: int64(len(data)),
	}
	names := w.columnNames()
	for i := range w.colRaw {
		stats.RawBytes += w.colRaw[i]
		stats.Columns = append(stats.Columns, ColumnStats{
			Name:            names[i],
			RawBytes:        w.colRaw[i],
			CompressedBytes: w.colComp[i],
		})
	}
	return data, stats, nil
}

func (w *FileWriter) columnNames() []string {
	names := make([]string, 0, 2+len(w.schema.Sparse))
	names = append(names, "_meta", "_dense")
	for _, f := range w.schema.Sparse {
		names = append(names, f.Key)
	}
	return names
}
