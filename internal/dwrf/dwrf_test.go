package dwrf

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/etl"
	"repro/internal/lakefs"
)

func testSchema() *datagen.Schema {
	return datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq:  2,
		UserElem: 4,
		Item:     2,
		Dense:    8,
		SeqLen:   32,
		Seed:     7,
	})
}

func testSamples(t testing.TB, schema *datagen.Schema, sessions int) []datagen.Sample {
	t.Helper()
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              sessions,
		MeanSamplesPerSession: 8,
		Seed:                  42,
	})
	return gen.GeneratePartition()
}

func samplesEqual(a, b datagen.Sample) bool {
	if a.SessionID != b.SessionID || a.UserID != b.UserID ||
		a.RequestID != b.RequestID || a.Timestamp != b.Timestamp || a.Label != b.Label {
		return false
	}
	if len(a.Sparse) != len(b.Sparse) || len(a.Dense) != len(b.Dense) {
		return false
	}
	for i := range a.Sparse {
		if len(a.Sparse[i]) != len(b.Sparse[i]) {
			return false
		}
		for j := range a.Sparse[i] {
			if a.Sparse[i][j] != b.Sparse[i][j] {
				return false
			}
		}
	}
	for i := range a.Dense {
		if a.Dense[i] != b.Dense[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	schema := testSchema()
	samples := testSamples(t, schema, 20)

	w, err := NewFileWriter(schema, WriterOptions{StripeRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows(samples); err != nil {
		t.Fatal(err)
	}
	data, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != len(samples) {
		t.Fatalf("stats.Rows = %d want %d", stats.Rows, len(samples))
	}
	wantStripes := (len(samples) + 15) / 16
	if stats.Stripes != wantStripes {
		t.Fatalf("stats.Stripes = %d want %d", stats.Stripes, wantStripes)
	}

	r, err := OpenReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != len(samples) {
		t.Fatalf("NumRows = %d want %d", r.NumRows(), len(samples))
	}
	if r.DenseCount() != schema.Dense {
		t.Fatalf("DenseCount = %d want %d", r.DenseCount(), schema.Dense)
	}
	keys := r.SparseKeys()
	want := schema.SparseKeys()
	if len(keys) != len(want) {
		t.Fatalf("SparseKeys = %v want %v", keys, want)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %q want %q", i, keys[i], want[i])
		}
	}

	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("ReadAll returned %d rows want %d", len(got), len(samples))
	}
	for i := range got {
		if !samplesEqual(got[i], samples[i]) {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, got[i], samples[i])
		}
	}
}

func TestEmptyFile(t *testing.T) {
	schema := testSchema()
	w, err := NewFileWriter(schema, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 0 || stats.Stripes != 0 {
		t.Fatalf("empty file stats: %+v", stats)
	}
	r, err := OpenReader(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no rows, got %d", len(got))
	}
}

func TestWriteAfterFinish(t *testing.T) {
	schema := testSchema()
	w, _ := NewFileWriter(schema, WriterOptions{})
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRow(testSamples(t, schema, 1)[0]); err == nil {
		t.Fatal("expected error writing after Finish")
	}
	if _, _, err := w.Finish(); err == nil {
		t.Fatal("expected error finishing twice")
	}
}

func TestSchemaMismatch(t *testing.T) {
	schema := testSchema()
	w, _ := NewFileWriter(schema, WriterOptions{})
	s := testSamples(t, schema, 1)[0]
	s.Sparse = s.Sparse[:2]
	if err := w.WriteRow(s); err == nil {
		t.Fatal("expected error for wrong sparse count")
	}
	s = testSamples(t, schema, 1)[0]
	s.Dense = s.Dense[:1]
	if err := w.WriteRow(s); err == nil {
		t.Fatal("expected error for wrong dense count")
	}
}

func TestInvalidOptions(t *testing.T) {
	schema := testSchema()
	if _, err := NewFileWriter(schema, WriterOptions{CompressionLevel: 42}); err == nil {
		t.Fatal("expected error for bad compression level")
	}
	if _, err := NewFileWriter(nil, WriterOptions{}); err == nil {
		t.Fatal("expected error for nil schema")
	}
}

func TestCorruptFile(t *testing.T) {
	schema := testSchema()
	samples := testSamples(t, schema, 5)
	w, _ := NewFileWriter(schema, WriterOptions{})
	if err := w.WriteRows(samples); err != nil {
		t.Fatal(err)
	}
	data, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bad head magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		},
		"bad tail magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] = 'X'
			return c
		},
		"tiny": func(b []byte) []byte { return b[:4] },
	}
	for name, corrupt := range cases {
		if _, err := OpenReader(corrupt(data)); err == nil {
			t.Errorf("%s: expected open error", name)
		}
	}

	// Flipping a byte inside a stripe must fail at decode, not crash.
	c := append([]byte(nil), data...)
	c[10] ^= 0xFF
	if r, err := OpenReader(c); err == nil {
		if _, err := r.ReadAll(); err == nil {
			t.Error("corrupted stripe decoded without error")
		}
	}
}

func TestStripeRangeRead(t *testing.T) {
	schema := testSchema()
	samples := testSamples(t, schema, 30)
	w, _ := NewFileWriter(schema, WriterOptions{StripeRows: 8})
	if err := w.WriteRows(samples); err != nil {
		t.Fatal(err)
	}
	data, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(data)
	if err != nil {
		t.Fatal(err)
	}

	// Decode stripe 1 via its byte range, as the reader tier's fill does.
	off, length := r.StripeByteRange(1)
	got, err := DecodeStripe(data[off:off+length], r.SparseKeys(), r.DenseCount())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != r.StripeRows(1) {
		t.Fatalf("stripe rows = %d want %d", len(got), r.StripeRows(1))
	}
	for i := range got {
		if !samplesEqual(got[i], samples[8+i]) {
			t.Fatalf("stripe row %d mismatch", i)
		}
	}

	if _, err := r.ReadStripe(-1); err == nil {
		t.Fatal("expected error for negative stripe")
	}
	if _, err := r.ReadStripe(r.NumStripes()); err == nil {
		t.Fatal("expected error for out-of-range stripe")
	}
}

// TestClusteringImprovesCompression is the O2 property: a table clustered
// by session ID compresses strictly better than the same rows interleaved
// by inference time, because stripes then contain adjacent duplicate
// feature lists (paper §4.1, Fig 7 storage row).
func TestClusteringImprovesCompression(t *testing.T) {
	schema := testSchema()
	samples := testSamples(t, schema, 150) // interleaved by timestamp

	write := func(ss []datagen.Sample) FileStats {
		w, err := NewFileWriter(schema, WriterOptions{StripeRows: 256})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRows(ss); err != nil {
			t.Fatal(err)
		}
		_, stats, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	base := write(samples)
	clustered := write(etl.ClusterBySession(samples))

	// Raw bytes may differ marginally (delta-encoded metadata varints
	// depend on row order) but the feature payload is identical.
	if diff := float64(clustered.RawBytes-base.RawBytes) / float64(base.RawBytes); diff > 0.01 || diff < -0.01 {
		t.Fatalf("raw bytes changed by clustering beyond tolerance: %d vs %d", base.RawBytes, clustered.RawBytes)
	}
	rBase, rClust := base.CompressionRatio(), clustered.CompressionRatio()
	if rClust <= rBase*1.2 {
		t.Fatalf("clustering should improve compression markedly: base %.2f clustered %.2f", rBase, rClust)
	}
	t.Logf("compression ratio: baseline %.2f, clustered %.2f (%.2fx)", rBase, rClust, rClust/rBase)
}

func TestColumnStats(t *testing.T) {
	schema := testSchema()
	samples := testSamples(t, schema, 10)
	w, _ := NewFileWriter(schema, WriterOptions{})
	if err := w.WriteRows(samples); err != nil {
		t.Fatal(err)
	}
	_, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Columns) != 2+len(schema.Sparse) {
		t.Fatalf("columns = %d want %d", len(stats.Columns), 2+len(schema.Sparse))
	}
	if stats.Columns[0].Name != "_meta" || stats.Columns[1].Name != "_dense" {
		t.Fatalf("column names: %v %v", stats.Columns[0].Name, stats.Columns[1].Name)
	}
	var raw int64
	for _, c := range stats.Columns {
		raw += c.RawBytes
	}
	if raw != stats.RawBytes {
		t.Fatalf("column raw bytes %d != total %d", raw, stats.RawBytes)
	}
	// Sequence feature columns dominate raw bytes, as in the paper.
	seqIdx, _ := schema.FeatureIndex("user_seq_0")
	if stats.Columns[2+seqIdx].RawBytes < stats.Columns[0].RawBytes {
		t.Fatal("sequence feature column should outweigh metadata")
	}
}

func TestWritePartitionAndReadBack(t *testing.T) {
	schema := testSchema()
	samples := testSamples(t, schema, 40)
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()

	stats, err := WritePartition(store, catalog, "tbl", 5, schema, samples,
		TableOptions{RowsPerFile: 64, Writer: WriterOptions{StripeRows: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != len(samples) {
		t.Fatalf("partition rows = %d want %d", stats.Rows, len(samples))
	}
	wantFiles := (len(samples) + 63) / 64
	if stats.Files != wantFiles {
		t.Fatalf("files = %d want %d", stats.Files, wantFiles)
	}
	files, err := catalog.Files("tbl", 5)
	if err != nil || len(files) != wantFiles {
		t.Fatalf("catalog files = %v, %v", files, err)
	}

	got, err := ReadPartition(store, catalog, "tbl", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("read %d rows want %d", len(got), len(samples))
	}
	for i := range got {
		if !samplesEqual(got[i], samples[i]) {
			t.Fatalf("row %d mismatch after partition round trip", i)
		}
	}
}

func TestWriteEmptyPartition(t *testing.T) {
	schema := testSchema()
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	stats, err := WritePartition(store, catalog, "tbl", 0, schema, nil, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 1 || stats.Rows != 0 {
		t.Fatalf("empty partition stats: %+v", stats)
	}
	got, err := ReadPartition(store, catalog, "tbl", 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty partition read: %d rows, %v", len(got), err)
	}
}

func BenchmarkFileWrite(b *testing.B) {
	schema := testSchema()
	samples := testSamples(b, schema, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := NewFileWriter(schema, WriterOptions{})
		if err := w.WriteRows(samples); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileRead(b *testing.B) {
	schema := testSchema()
	samples := testSamples(b, schema, 100)
	w, _ := NewFileWriter(schema, WriterOptions{})
	if err := w.WriteRows(samples); err != nil {
		b.Fatal(err)
	}
	data, _, err := w.Finish()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenReader(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}
