package dwrf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Column stream encodings. Every stream is a byte slice produced by one of
// the putX helpers and consumed by the matching readX helper; streams are
// then individually flate-compressed per stripe.

// putUvarint appends v to b as an unsigned varint.
func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putVarint appends v to b as a zigzag-encoded signed varint.
func putVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putFloat32 appends the little-endian IEEE bits of f.
func putFloat32(b []byte, f float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(f))
}

// byteReader adapts a slice for the binary varint readers while tracking
// position.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r)
}

func (r *byteReader) varint() (int64, error) {
	return binary.ReadVarint(r)
}

func (r *byteReader) float32() (float32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return math.Float32frombits(v), nil
}

func (r *byteReader) remaining() int { return len(r.buf) - r.pos }

// inflater bundles a reusable flate reader with its byte source so stripe
// decoding does not rebuild the (large) flate state per column stream.
type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var inflaterPool = sync.Pool{New: func() any { return &inflater{} }}

// decompressStream inflates a compressed stream into dst's storage (grown
// if needed); rawLen is the expected decompressed size recorded in the
// stripe header. Flate state comes from a pool, so concurrent stripe
// decodes each reuse a warm inflater.
func decompressStream(dst, comp []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 || rawLen > maxStreamBytes {
		return nil, fmt.Errorf("dwrf: invalid raw stream length %d", rawLen)
	}
	fl := inflaterPool.Get().(*inflater)
	defer func() {
		// Drop the reference into the caller's file buffer before pooling,
		// so idle pool entries never pin a decoded file in memory.
		fl.src.Reset(nil)
		inflaterPool.Put(fl)
	}()
	fl.src.Reset(comp)
	if fl.fr == nil {
		fl.fr = flate.NewReader(&fl.src)
	} else if err := fl.fr.(flate.Resetter).Reset(&fl.src, nil); err != nil {
		return nil, fmt.Errorf("dwrf: flate reset: %w", err)
	}
	if cap(dst) < rawLen {
		dst = make([]byte, rawLen)
	} else {
		dst = dst[:rawLen]
	}
	if _, err := io.ReadFull(fl.fr, dst); err != nil {
		return nil, fmt.Errorf("dwrf: decompress: %w", err)
	}
	// A trailing read must hit EOF, otherwise the recorded length lied.
	var one [1]byte
	if n, _ := fl.fr.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("dwrf: stream longer than recorded length %d", rawLen)
	}
	return dst, nil
}

// streamBufPool recycles decompressed column stream buffers across stripe
// decodes; samples copy their data out, so the buffers never escape.
var streamBufPool = sync.Pool{New: func() any { return new([]byte) }}
