package dwrf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Column stream encodings. Every stream is a byte slice produced by one of
// the putX helpers and consumed by the matching readX helper; streams are
// then individually flate-compressed per stripe.

// putUvarint appends v to b as an unsigned varint.
func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putVarint appends v to b as a zigzag-encoded signed varint.
func putVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putFloat32 appends the little-endian IEEE bits of f.
func putFloat32(b []byte, f float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(f))
}

// byteReader adapts a slice for the binary varint readers while tracking
// position.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r)
}

func (r *byteReader) varint() (int64, error) {
	return binary.ReadVarint(r)
}

func (r *byteReader) float32() (float32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return math.Float32frombits(v), nil
}

func (r *byteReader) remaining() int { return len(r.buf) - r.pos }

// compressStream flate-compresses a stream at the given level (0 = default).
func compressStream(raw []byte, level int) ([]byte, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, level)
	if err != nil {
		return nil, fmt.Errorf("dwrf: flate init: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return nil, fmt.Errorf("dwrf: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("dwrf: compress close: %w", err)
	}
	return out.Bytes(), nil
}

// decompressStream inflates a compressed stream; rawLen is the expected
// decompressed size recorded in the stripe header.
func decompressStream(comp []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 || rawLen > maxStreamBytes {
		return nil, fmt.Errorf("dwrf: invalid raw stream length %d", rawLen)
	}
	r := flate.NewReader(bytes.NewReader(comp))
	defer r.Close()
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("dwrf: decompress: %w", err)
	}
	// A trailing read must hit EOF, otherwise the recorded length lied.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("dwrf: stream longer than recorded length %d", rawLen)
	}
	return out, nil
}
