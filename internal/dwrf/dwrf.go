// Package dwrf implements a columnar, stripe-based training-data file
// format modelled on Meta's DWRF (an ORC derivative, paper §2.1). Files
// are composed of stripes, each holding a small run of rows; within a
// stripe every flattened feature column is encoded into its own stream and
// block-compressed (stdlib flate standing in for zstd, see DESIGN.md).
//
// The format exists to reproduce the paper's storage behaviour: when the
// ETL clusters a table by session ID (O2), each stripe holds many rows of
// the same session, so the per-stripe compressor sees adjacent duplicate
// ID lists and the compression ratio rises — the effect behind the paper's
// 3.71×/2.06× table compression gains and the Table 3 read-byte savings.
package dwrf

import "fmt"

// Magic bytes at the start and end of every DWRF file.
const magic = "DWRF"

// Format limits. These guard the decoder against corrupt or adversarial
// inputs rather than constraining real use.
const (
	maxColumns     = 1 << 20
	maxStripeRows  = 1 << 24
	maxStreamBytes = 1 << 31
)

// DefaultStripeRows is the number of rows per stripe when WriterOptions
// does not override it. Stripes are deliberately small (a "small set of
// rows", §2.1) so that a stripe is a practical read/compression unit.
const DefaultStripeRows = 1024

// WriterOptions configures a FileWriter.
type WriterOptions struct {
	// StripeRows is the maximum number of rows per stripe.
	// 0 means DefaultStripeRows.
	StripeRows int
	// CompressionLevel is the flate level (1–9); 0 means flate's default.
	CompressionLevel int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.StripeRows <= 0 {
		o.StripeRows = DefaultStripeRows
	}
	return o
}

func (o WriterOptions) validate() error {
	if o.StripeRows > maxStripeRows {
		return fmt.Errorf("dwrf: stripe rows %d exceeds limit %d", o.StripeRows, maxStripeRows)
	}
	if o.CompressionLevel < 0 || o.CompressionLevel > 9 {
		return fmt.Errorf("dwrf: invalid compression level %d", o.CompressionLevel)
	}
	return nil
}

// ColumnStats records raw (pre-compression) and compressed stream bytes
// for one flattened column across all stripes of a file.
type ColumnStats struct {
	Name            string
	RawBytes        int64
	CompressedBytes int64
}

// FileStats summarizes a written file. RawBytes is the total size of all
// encoded column streams before compression; CompressedBytes is the final
// file size including stripe headers and footer.
type FileStats struct {
	Rows            int
	Stripes         int
	RawBytes        int64
	CompressedBytes int64
	Columns         []ColumnStats
}

// CompressionRatio is raw over compressed, the paper's storage metric.
func (s FileStats) CompressionRatio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.CompressedBytes)
}

// stripeInfo locates one stripe within a file.
type stripeInfo struct {
	offset int64
	length int64
	rows   int
}
