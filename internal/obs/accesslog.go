package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// AccessEvent is one access-log record: a session lifecycle transition
// as the serving process saw it. It mirrors dppnet.SessionEvent plus a
// timestamp (obs owns the type so the serving stack never imports obs).
type AccessEvent struct {
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Kind is "open", "close", or "error".
	Kind string `json:"kind"`
	// ID ties a close to its open; 0 for pre-admission errors.
	ID int64 `json:"id,omitempty"`
	// Peer is the client's remote address.
	Peer string `json:"peer,omitempty"`
	// Table is the session's table.
	Table string `json:"table,omitempty"`
	// FileUnits marks a fleet shard's file-unit session.
	FileUnits bool `json:"file_units,omitempty"`
	// ShareScans marks a ScanCache-sharing session.
	ShareScans bool `json:"share_scans,omitempty"`
	// Batches and Bytes are the close event's shipped totals.
	Batches int64 `json:"batches,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	// Duration is the close event's session lifetime.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Detail is the outcome or error text.
	Detail string `json:"detail,omitempty"`
	// Resumed marks an open that continued an earlier stream; Offset is
	// the frame index the reconnecting client asked to continue from.
	Resumed bool  `json:"resumed,omitempty"`
	Offset  int64 `json:"offset,omitempty"`
	// Tenant is the authenticated tenant behind the event; empty when
	// the server runs without a front door.
	Tenant string `json:"tenant,omitempty"`
}

// AccessLog is a fixed-capacity, wait-free ring of the newest
// AccessEvents. Record claims a slot with one atomic add and publishes
// the event with one atomic pointer store — no locks, no waiting on
// readers — so it is safe to call from the serving path (it is the
// target of dppnet's OnSession hook; see SessionHook). Once the ring
// wraps, the oldest events are overwritten; the per-kind counters keep
// counting everything ever recorded, so /metrics sees totals while
// /accesslog sees the recent tail.
type AccessLog struct {
	slots  []atomic.Pointer[AccessEvent]
	cursor atomic.Uint64

	opens, closes, errors, other metrics.Counter
}

// NewAccessLog returns a ring holding the newest capacity events
// (minimum 1).
func NewAccessLog(capacity int) *AccessLog {
	if capacity < 1 {
		capacity = 1
	}
	return &AccessLog{slots: make([]atomic.Pointer[AccessEvent], capacity)}
}

// Record publishes one event, stamping Time if unset. Wait-free; safe
// from any goroutine.
func (l *AccessLog) Record(ev AccessEvent) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	switch ev.Kind {
	case "open":
		l.opens.Inc()
	case "close":
		l.closes.Inc()
	case "error":
		l.errors.Inc()
	default:
		l.other.Inc()
	}
	seq := l.cursor.Add(1) - 1
	l.slots[seq%uint64(len(l.slots))].Store(&ev)
}

// Snapshot returns the resident events oldest-first. Concurrent with
// writers it is best-effort: an event being overwritten during the read
// may appear in its new form or its old, and a claimed-but-unpublished
// slot is skipped — but every returned event is complete (the pointer
// store publishes the whole record at once).
func (l *AccessLog) Snapshot() []AccessEvent {
	n := uint64(len(l.slots))
	c := l.cursor.Load()
	start := uint64(0)
	count := c
	if c > n {
		start = c % n
		count = n
	}
	out := make([]AccessEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		if ev := l.slots[(start+i)%n].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// AccessLogStats is the log's lifetime accounting (not capped by ring
// capacity).
type AccessLogStats struct {
	// Opens, Closes, and Errors count recorded events by kind; Other
	// counts unrecognized kinds.
	Opens, Closes, Errors, Other int64
}

// Stats returns the lifetime event counts. Lock-free.
func (l *AccessLog) Stats() AccessLogStats {
	return AccessLogStats{
		Opens:  l.opens.Value(),
		Closes: l.closes.Value(),
		Errors: l.errors.Value(),
		Other:  l.other.Value(),
	}
}
