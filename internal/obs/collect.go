package obs

import (
	"runtime"
	"time"

	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/front"
	"repro/internal/dpp/landing"
	"repro/internal/storage"
)

// This file is the wiring layer between the serving stack's stats
// snapshots and the registry: one Register* call per instrumented
// component, called once at process startup. Metric names are part of
// the operational contract and pinned by the golden-format test — add
// freely, rename deliberately.

// RegisterProcess registers Go runtime series: goroutine count, heap
// occupancy, GC cycles, and process uptime.
func RegisterProcess(reg *Registry) {
	start := time.Now()
	reg.Gauge("recd_go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.Gauge("recd_go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	reg.Counter("recd_go_gc_runs_total", "Completed GC cycles.", nil,
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
	reg.Gauge("recd_process_uptime_seconds", "Seconds since the process registered its metrics.", nil,
		func() float64 { return time.Since(start).Seconds() })
}

// RegisterService registers a dpp.Service's session, batch, ScanCache,
// and autoscaler series. labels distinguishes services sharing a
// registry (typically {"shard": "<i>"}).
func RegisterService(reg *Registry, labels Labels, svc *dpp.Service) {
	reg.Gauge("recd_sessions_active", "Sessions currently open.", labels,
		func() float64 { return float64(svc.Stats().ActiveSessions) })
	reg.Counter("recd_sessions_opened_total", "Sessions ever opened.", labels,
		func() float64 { return float64(svc.Stats().SessionsOpened) })
	reg.Counter("recd_session_errors_total", "Sessions that ended with a reader or scan error.", labels,
		func() float64 { return float64(svc.Stats().SessionErrors) })
	reg.Counter("recd_batches_served_total", "Batches handed out across all sessions.", labels,
		func() float64 { return float64(svc.Stats().BatchesServed) })

	reg.Counter("recd_scancache_hits_total", "ScanCache gets served from a resident or in-flight entry.", labels,
		func() float64 { return float64(svc.Stats().Cache.Hits) })
	reg.Counter("recd_scancache_misses_total", "ScanCache gets that computed.", labels,
		func() float64 { return float64(svc.Stats().Cache.Misses) })
	reg.Counter("recd_scancache_evictions_total", "ScanCache entries dropped to respect the byte budget.", labels,
		func() float64 { return float64(svc.Stats().Cache.Evictions) })
	reg.Counter("recd_scancache_invalidations_total", "ScanCache entries dropped because their file was deleted (retention coherence).", labels,
		func() float64 { return float64(svc.Stats().Cache.Invalidations) })
	reg.Gauge("recd_scancache_entries", "ScanCache resident entries.", labels,
		func() float64 { return float64(svc.Stats().Cache.Entries) })
	reg.Gauge("recd_scancache_bytes", "ScanCache resident bytes.", labels,
		func() float64 { return float64(svc.Stats().Cache.Bytes) })

	reg.Counter("recd_scale_events_total", "AutoScaler pool resizes by direction.",
		withLabel(labels, "direction", "up"),
		func() float64 { return float64(svc.Stats().Scheduler.ScaleUps) })
	reg.Counter("recd_scale_events_total", "AutoScaler pool resizes by direction.",
		withLabel(labels, "direction", "down"),
		func() float64 { return float64(svc.Stats().Scheduler.ScaleDowns) })
	reg.Counter("recd_stall_seconds_total", "Session starvation by kind: worker (merge starved for fill workers) or consumer (output buffer full).",
		withLabel(labels, "kind", "worker"),
		func() float64 { return svc.Stats().Scheduler.WorkerStall.Seconds() })
	reg.Counter("recd_stall_seconds_total", "Session starvation by kind: worker (merge starved for fill workers) or consumer (output buffer full).",
		withLabel(labels, "kind", "consumer"),
		func() float64 { return svc.Stats().Scheduler.ConsumerStall.Seconds() })

	reg.Gauge("recd_follow_sessions", "Follow (live-tail) sessions currently open.", labels,
		func() float64 { return float64(svc.Stats().Follow.Sessions) })
	reg.Gauge("recd_follow_lag_files", "Files observed from the catalog but not yet merged into open Follow streams.", labels,
		func() float64 { return float64(svc.Stats().Follow.LagFiles) })
	reg.Counter("recd_follow_extended_files_total", "Files extended into Follow scan plans since the service started.", labels,
		func() float64 { return float64(svc.Stats().Follow.ExtendedFiles) })
}

// RegisterLanding registers a landing Writer's ingestion series from a
// stats snapshot closure: sealed files, landed rows, and the flush mix.
func RegisterLanding(reg *Registry, labels Labels, stats func() landing.WriterStats) {
	reg.Counter("recd_landed_files_total", "Files sealed and published by the landing writer.", labels,
		func() float64 { return float64(stats().FilesLanded) })
	reg.Counter("recd_landed_rows_total", "Rows inside sealed landing files.", labels,
		func() float64 { return float64(stats().RowsLanded) })
	reg.Counter("recd_landing_flushes_total", "Landing seal events by trigger: timed (FlushInterval) or size (FlushRows, hour advance, explicit Flush/Close).",
		withLabel(labels, "trigger", "timed"),
		func() float64 { return float64(stats().TimedFlushes) })
	reg.Counter("recd_landing_flushes_total", "Landing seal events by trigger: timed (FlushInterval) or size (FlushRows, hour advance, explicit Flush/Close).",
		withLabel(labels, "trigger", "size"),
		func() float64 {
			st := stats()
			return float64(st.Flushes - st.TimedFlushes)
		})
	reg.Gauge("recd_landing_buffered_rows", "Unsealed rows buffered in the landing writer.", labels,
		func() float64 { return float64(stats().BufferedRows) })
}

// RegisterNetServer registers a dppnet.Server's transport series:
// connections, wire sessions, shipped frames and bytes, and
// credit-window stalls.
func RegisterNetServer(reg *Registry, labels Labels, srv *dppnet.Server) {
	reg.Counter("recd_net_conns_accepted_total", "Accepted TCP connections.", labels,
		func() float64 { return float64(srv.Stats().ConnsAccepted) })
	reg.Gauge("recd_net_conns_active", "Connections currently being handled.", labels,
		func() float64 { return float64(srv.Stats().ConnsActive) })
	reg.Counter("recd_net_sessions_served_total", "Wire sessions admitted (batch and file-unit).", labels,
		func() float64 { return float64(srv.Stats().SessionsServed) })
	reg.Counter("recd_net_batches_sent_total", "Batch frames shipped.", labels,
		func() float64 { return float64(srv.Stats().BatchesSent) })
	reg.Counter("recd_net_units_sent_total", "File-unit frames shipped.", labels,
		func() float64 { return float64(srv.Stats().UnitsSent) })
	reg.Counter("recd_net_bytes_sent_total", "Payload bytes shipped in batch and unit frames.", labels,
		func() float64 { return float64(srv.Stats().BytesSent) })
	reg.Counter("recd_net_credit_stalls_total", "Credit-window exhaustion episodes (consumer owed credits).", labels,
		func() float64 { return float64(srv.Stats().CreditStalls) })
	reg.Counter("recd_net_credit_stall_seconds_total", "Time spent blocked on credit-window exhaustion.", labels,
		func() float64 { return srv.Stats().CreditStallTime.Seconds() })
	reg.Counter("recd_resumed_sessions_total", "Wire sessions that resumed by claiming a parked token (retained frames resent, nothing re-decoded).", labels,
		func() float64 { return float64(srv.Stats().ResumedSessions) })
	reg.Counter("recd_replayed_sessions_total", "Wire sessions that continued by deterministic offset replay (no parked state).", labels,
		func() float64 { return float64(srv.Stats().ReplayedSessions) })
	reg.Counter("recd_replayed_batches_total", "Frames re-pulled and discarded to reach a resume offset (cold replay).", labels,
		func() float64 { return float64(srv.Stats().ReplayedBatches) })
	reg.Counter("recd_parked_sessions_total", "Dropped resumable sessions parked for later resume.", labels,
		func() float64 { return float64(srv.Stats().ParkedSessions) })
	reg.Counter("recd_resume_expired_total", "Parked sessions evicted by TTL or capacity before resume.", labels,
		func() float64 { return float64(srv.Stats().ResumeExpired) })
	reg.Counter("recd_drain_notices_total", "Drain frames handed to in-flight sessions during graceful drain.", labels,
		func() float64 { return float64(srv.Stats().DrainNotices) })
	reg.Gauge("recd_net_draining", "1 while the server is in drain mode.", labels,
		func() float64 {
			if srv.Stats().Draining {
				return 1
			}
			return 0
		})
}

// RegisterGate registers a front.Gate's multi-tenant admission series:
// per-tenant session/byte usage for every tenant the gate knows at
// registration (tenant sets are static, from the -tenants file), plus
// the gate-wide rejection counters.
func RegisterGate(reg *Registry, labels Labels, g *front.Gate) {
	for _, tenant := range g.KnownTenants() {
		t := tenant
		tl := withLabel(labels, "tenant", t)
		reg.Gauge("recd_tenant_sessions_active", "Sessions currently admitted per tenant.", tl,
			func() float64 { return float64(g.TenantStats(t).Active) })
		reg.Counter("recd_tenant_sessions_admitted_total", "Sessions ever admitted per tenant.", tl,
			func() float64 { return float64(g.TenantStats(t).Admitted) })
		reg.Counter("recd_tenant_bytes_total", "Payload bytes streamed per tenant.", tl,
			func() float64 { return float64(g.TenantStats(t).Bytes) })
	}
	reg.Counter("recd_gate_rejects_total", "Handshakes refused at the front door, by reason.",
		withLabel(labels, "reason", "auth"),
		func() float64 { return float64(g.Stats().AuthFailures) })
	reg.Counter("recd_gate_rejects_total", "Handshakes refused at the front door, by reason.",
		withLabel(labels, "reason", "quota"),
		func() float64 { return float64(g.Stats().QuotaRejects) })
	reg.Counter("recd_gate_rejects_total", "Handshakes refused at the front door, by reason.",
		withLabel(labels, "reason", "draining"),
		func() float64 { return float64(g.Stats().DrainRejects) })
}

// RegisterGovernor registers the fair-share worker governor's series:
// the total budget, rebalance count, and per-tenant granted workers for
// every tenant with a configured weight.
func RegisterGovernor(reg *Registry, labels Labels, gov *front.Governor, tenants []string) {
	reg.Gauge("recd_governor_worker_budget", "Total reader-worker budget arbitrated across tenants.", labels,
		func() float64 { return float64(gov.Budget()) })
	reg.Counter("recd_governor_rebalances_total", "Fair-share rebalance passes.", labels,
		func() float64 { return float64(gov.Stats().Rebalances) })
	for _, tenant := range tenants {
		t := tenant
		reg.Gauge("recd_governor_granted_workers", "Reader workers currently granted per tenant.",
			withLabel(labels, "tenant", t),
			func() float64 { return float64(gov.Granted(t)) })
	}
}

// RegisterStoreCache registers a storage CachingBackend's hit/miss and
// occupancy series from a stats snapshot closure.
func RegisterStoreCache(reg *Registry, labels Labels, stats func() storage.CacheStats) {
	reg.Counter("recd_storecache_hits_total", "Backend cache lookups served from cache.", labels,
		func() float64 { return float64(stats().Hits) })
	reg.Counter("recd_storecache_misses_total", "Backend cache lookups that fetched.", labels,
		func() float64 { return float64(stats().Misses) })
	reg.Counter("recd_storecache_evictions_total", "Backend cache blobs dropped to respect the byte budget.", labels,
		func() float64 { return float64(stats().Evictions) })
	reg.Counter("recd_storecache_invalidations_total", "Backend cache blobs dropped for coherence: retention invalidations plus demotions to the decoded tier.", labels,
		func() float64 { return float64(stats().Invalidations) })
	reg.Gauge("recd_storecache_entries", "Backend cache resident blobs.", labels,
		func() float64 { return float64(stats().Entries) })
	reg.Gauge("recd_storecache_bytes", "Backend cache resident bytes.", labels,
		func() float64 { return float64(stats().Bytes) })
}

// RegisterAccessLog registers the access log's lifetime event counts.
func RegisterAccessLog(reg *Registry, log *AccessLog) {
	for _, kind := range []string{"open", "close", "error"} {
		k := kind
		reg.Counter("recd_accesslog_events_total", "Access-log events recorded by kind.",
			Labels{"kind": k},
			func() float64 {
				st := log.Stats()
				switch k {
				case "open":
					return float64(st.Opens)
				case "close":
					return float64(st.Closes)
				default:
					return float64(st.Errors)
				}
			})
	}
}

// SessionHook adapts an AccessLog to dppnet's OnSession callback:
// assign the result to Server.OnSession before Serve.
func SessionHook(log *AccessLog) func(dppnet.SessionEvent) {
	return func(ev dppnet.SessionEvent) {
		log.Record(AccessEvent{
			Kind:       ev.Kind,
			ID:         ev.ID,
			Peer:       ev.Peer,
			Table:      ev.Table,
			FileUnits:  ev.FileUnits,
			ShareScans: ev.ShareScans,
			Batches:    ev.Batches,
			Bytes:      ev.Bytes,
			Duration:   ev.Duration,
			Detail:     ev.Detail,
			Resumed:    ev.Resumed,
			Offset:     ev.Offset,
			Tenant:     ev.Tenant,
		})
	}
}

// withLabel copies base and adds one more label.
func withLabel(base Labels, k, v string) Labels {
	out := make(Labels, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}
