// Package obs is the service's observability sidecar: a private HTTP
// listener exposing Prometheus-text /metrics, pprof, /healthz, /statsz,
// and the access log, fed by lock-free registries so scraping never
// perturbs the serving path.
//
// The package deliberately sits above the serving stack — obs imports
// dpp, dppnet, and storage to read their stats snapshots; nothing in the
// serving stack imports obs. The one integration point running on a hot
// path is the access log, which dppnet reaches through its OnSession
// callback hook (wired by SessionHook), and AccessLog.Record is a
// wait-free ring-buffer store sized for that position.
//
// A process wires it up once at startup:
//
//	reg := obs.NewRegistry()
//	alog := obs.NewAccessLog(4096)
//	obs.RegisterProcess(reg)
//	obs.RegisterService(reg, obs.Labels{"shard": "0"}, svc)
//	obs.RegisterNetServer(reg, obs.Labels{"shard": "0"}, netSrv)
//	obs.RegisterAccessLog(reg, alog)
//	netSrv.OnSession = obs.SessionHook(alog)
//	side := obs.NewServer(obs.Config{Registry: reg, AccessLog: alog, Statsz: statszFn})
//	go side.ListenAndServe(addr)
//	...
//	side.Shutdown(ctx) // graceful: drains in-flight scrapes
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Config assembles a sidecar Server. Registry is required; AccessLog and
// Statsz are optional (their endpoints 404 / return empty when absent).
type Config struct {
	// Registry backs /metrics.
	Registry *Registry
	// AccessLog backs /accesslog; nil disables the endpoint.
	AccessLog *AccessLog
	// Statsz, when non-nil, is called per /statsz request and its result
	// JSON-encoded — the process's free-form stats document (the HTTP
	// form of dppnet's statsz handshake).
	Statsz func() any
	// Drain, when non-nil, enables POST /drainz: the operator's HTTP
	// lever for graceful drain, equivalent to SIGTERM. The callback must
	// be idempotent (dppnet.Server.Drain is).
	Drain func()
}

// Server is the observability sidecar: one private HTTP listener serving
// /metrics (Prometheus text), /debug/pprof/*, /healthz, /statsz, and
// /accesslog. It is not the data plane — bind it to a loopback or
// operator-only address.
type Server struct {
	cfg   Config
	srv   *http.Server
	start time.Time

	mu sync.Mutex
	ln net.Listener
}

// NewServer builds a sidecar over cfg. Call Serve or ListenAndServe to
// start it, Shutdown to stop it.
func NewServer(cfg Config) *Server {
	s := &Server{cfg: cfg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	if cfg.AccessLog != nil {
		mux.HandleFunc("/accesslog", s.handleAccessLog)
	}
	if cfg.Drain != nil {
		mux.HandleFunc("/drainz", s.handleDrainz)
	}
	// pprof on the explicit mux, not http.DefaultServeMux: the sidecar
	// must work without global handler registration leaking into other
	// servers in the process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Serve serves HTTP on ln until Shutdown (which makes Serve return nil)
// or a listener failure.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	err := s.srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listener address ("" before Serve) — how a
// caller that listened on :0 discovers the port.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the sidecar: the listener closes, in-flight
// scrapes drain (bounded by ctx), and Serve returns nil. Safe to call
// more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n", time.Since(s.start).Seconds())
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var doc any
	if s.cfg.Statsz != nil {
		doc = s.cfg.Statsz()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleDrainz triggers graceful drain. POST-only: drain is a state
// change, and a stray GET from a dashboard must not drain a server.
func (s *Server) handleDrainz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.cfg.Drain()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"draining"}`)
}

// handleAccessLog dumps the ring oldest-first as a JSON array; ?n=K
// keeps only the newest K events.
func (s *Server) handleAccessLog(w http.ResponseWriter, r *http.Request) {
	events := s.cfg.AccessLog.Snapshot()
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(events); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
