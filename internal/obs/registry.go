package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is one metric sample's label set. Rendered sorted by key, so a
// given set always prints the same way.
type Labels map[string]string

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is startup-time wiring and takes
// a lock; collection happens at scrape time by calling the registered
// closures, which are expected to read atomic snapshots — a scrape
// never blocks the serving path.
//
// A family (one name, one HELP, one TYPE) may carry many samples: each
// Counter/Gauge call with the same name appends one more labeled sample
// source, which is how per-shard series share a family. Kind and help
// must agree across calls; a mismatch is a wiring bug and panics.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, kind string
	samples          []sample
}

type sample struct {
	labels string // pre-rendered `{k="v",...}` or ""
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers one sample source under a counter family: fn must
// be monotone non-decreasing (a total). Labels may be nil.
func (r *Registry) Counter(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, fn)
}

// Gauge registers one sample source under a gauge family: fn reports an
// instantaneous level. Labels may be nil.
func (r *Registry) Gauge(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, fn)
}

func (r *Registry) register(name, help, kind string, labels Labels, fn func() float64) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind || f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different kind or help", name))
	}
	for _, s := range f.samples {
		if s.labels == rendered {
			panic(fmt.Sprintf("obs: duplicate sample %s%s", name, rendered))
		}
	}
	f.samples = append(f.samples, sample{labels: rendered, fn: fn})
}

// WritePrometheus renders every family in registration order — HELP and
// TYPE lines, then one line per sample. The output is deterministic for
// a fixed registry apart from the sample values themselves.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind)
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.fn(), 'g', -1, 64))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// validName checks the Prometheus metric/label name grammar.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels pre-renders a label set to its `{k="v",...}` text form,
// keys sorted, values escaped per the exposition format.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validName(k) || k[0] == ':' {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// Go's %q escaping (backslash, quote, \n) coincides with the
		// exposition format's label-value escaping.
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(v string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(v)
}
