package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/front"
	"repro/internal/dpp/landing"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// newTestService lands one small synthetic partition and opens a service
// over it — the same landing shape the dpp and dppnet suites use.
func newTestService(t testing.TB, cfg dpp.Config) *dpp.Service {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 1, UserElem: 1, Item: 1, Dense: 2, SeqLen: 12, Seed: 7,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 20, MeanSamplesPerSession: 6, Seed: 41,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		t.Fatal(err)
	}
	cfg.Backend = store
	cfg.Catalog = catalog
	svc, err := dpp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func testSpec() dpp.Spec {
	return dpp.Spec{Spec: reader.Spec{
		Table:          "tbl",
		BatchSize:      32,
		SparseFeatures: []string{"item_0"},
	}}
}

// buildFullRegistry wires every Register* helper the way a serving
// process does, over real (idle) components — including a two-tenant
// front door, so the golden pins the per-tenant series shape.
func buildFullRegistry(t testing.TB) (*Registry, *AccessLog) {
	t.Helper()
	svc := newTestService(t, dpp.Config{})
	netSrv := dppnet.NewServer(svc)
	t.Cleanup(func() { netSrv.Close() })
	alog := NewAccessLog(16)
	limits := map[string]front.Limits{
		"team-a": {Weight: 1, MaxSessions: 4},
		"team-b": {Weight: 2},
	}
	gate := front.NewGate(front.Config{
		Auth:   front.StaticTokens{"tok-a": "team-a", "tok-b": "team-b"},
		Limits: limits,
	})
	gov := front.NewGovernor(front.GovernorConfig{Budget: 8, Weights: map[string]int{"team-a": 1, "team-b": 2}})
	reg := NewRegistry()
	RegisterProcess(reg)
	RegisterService(reg, Labels{"shard": "0"}, svc)
	RegisterNetServer(reg, Labels{"shard": "0"}, netSrv)
	RegisterGate(reg, nil, gate)
	RegisterGovernor(reg, nil, gov, []string{"team-a", "team-b"})
	RegisterStoreCache(reg, Labels{"shard": "0"}, func() storage.CacheStats { return storage.CacheStats{} })
	RegisterLanding(reg, Labels{"shard": "0"}, func() landing.WriterStats { return landing.WriterStats{} })
	RegisterAccessLog(reg, alog)
	return reg, alog
}

// normalizeValues replaces every sample value with "X" so the golden
// pins series names, HELP, TYPE, label sets, and ordering — the
// operational contract — without pinning live values.
func normalizeValues(text string) string {
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		lines[i] = ln[:sp] + " X"
	}
	return strings.Join(lines, "\n")
}

// TestMetricsGoldenFormat pins the Prometheus exposition shape for a
// fully wired single-shard process against testdata/metrics.golden.
// Renaming or dropping a series is a breaking change to dashboards and
// the soak gate — update the golden deliberately by re-running with
// UPDATE_METRICS_GOLDEN=1 and reviewing the diff.
func TestMetricsGoldenFormat(t *testing.T) {
	reg, _ := buildFullRegistry(t)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := normalizeValues(b.String())
	if os.Getenv("UPDATE_METRICS_GOLDEN") != "" {
		if err := os.WriteFile("testdata/metrics.golden", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile("testdata/metrics.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(golden) {
		t.Errorf("metrics format drifted from testdata/metrics.golden.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestRegistryRejectsBadWiring pins the panic contract for wiring bugs.
func TestRegistryRejectsBadWiring(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("ok_total", "h", nil, func() float64 { return 0 })
	mustPanic("bad name", func() { reg.Counter("0bad", "h", nil, func() float64 { return 0 }) })
	mustPanic("kind clash", func() { reg.Gauge("ok_total", "h", nil, func() float64 { return 0 }) })
	mustPanic("duplicate sample", func() { reg.Counter("ok_total", "h", nil, func() float64 { return 0 }) })
	mustPanic("bad label", func() { reg.Counter("l_total", "h", Labels{"0k": "v"}, func() float64 { return 0 }) })
}

// TestRegistryLabelRendering pins sorted keys and value escaping.
func TestRegistryLabelRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "h", Labels{"b": `qu"ote`, "a": "x\ny"}, func() float64 { return 1.5 })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP g h\n# TYPE g gauge\ng{a=\"x\\ny\",b=\"qu\\\"ote\"} 1.5\n"
	if b.String() != want {
		t.Errorf("got %q want %q", b.String(), want)
	}
}

// TestAccessLogWraparound fills a small ring past capacity and checks
// the snapshot is the newest events, oldest-first, while the lifetime
// counters keep counting everything.
func TestAccessLogWraparound(t *testing.T) {
	const capacity, total = 8, 21
	l := NewAccessLog(capacity)
	for i := 1; i <= total; i++ {
		kind := "open"
		if i%3 == 0 {
			kind = "close"
		}
		l.Record(AccessEvent{Kind: kind, ID: int64(i)})
	}
	got := l.Snapshot()
	if len(got) != capacity {
		t.Fatalf("snapshot length %d, want %d", len(got), capacity)
	}
	for i, ev := range got {
		if want := int64(total - capacity + 1 + i); ev.ID != want {
			t.Errorf("slot %d: ID %d, want %d", i, ev.ID, want)
		}
		if ev.Time.IsZero() {
			t.Errorf("slot %d: zero timestamp", i)
		}
	}
	st := l.Stats()
	if st.Opens+st.Closes != total || st.Closes != total/3 {
		t.Errorf("stats %+v don't account for %d events", st, total)
	}
}

// TestAccessLogConcurrent hammers the ring from many writers with
// concurrent snapshots (run under -race in CI). Every snapshotted event
// must be internally consistent — the pointer publication makes torn
// records impossible — and the lifetime counts exact.
func TestAccessLogConcurrent(t *testing.T) {
	const writers, perWriter, capacity = 8, 400, 64
	l := NewAccessLog(capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range l.Snapshot() {
				if ev.ID != ev.Bytes {
					t.Errorf("torn event: ID %d Bytes %d", ev.ID, ev.Bytes)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				n := int64(w*perWriter + i)
				l.Record(AccessEvent{Kind: "open", ID: n, Bytes: n})
			}
		}(w)
	}
	for l.Stats().Opens < writers*perWriter {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if st := l.Stats(); st.Opens != writers*perWriter {
		t.Errorf("recorded %d opens, want %d", st.Opens, writers*perWriter)
	}
	if got := l.Snapshot(); len(got) != capacity {
		t.Errorf("snapshot length %d, want %d", len(got), capacity)
	}
}

// TestSidecarEndToEnd drives real dppnet traffic through a service,
// scrapes the sidecar like an operator would, and checks every endpoint
// — then shuts the whole stack down and asserts zero goroutine residue.
func TestSidecarEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := newTestService(t, dpp.Config{})
	netSrv := dppnet.NewServer(svc)
	alog := NewAccessLog(128)
	netSrv.OnSession = SessionHook(alog)
	reg := NewRegistry()
	RegisterProcess(reg)
	RegisterService(reg, Labels{"shard": "0"}, svc)
	RegisterNetServer(reg, Labels{"shard": "0"}, netSrv)
	RegisterAccessLog(reg, alog)

	netLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	netDone := make(chan error, 1)
	go func() { netDone <- netSrv.Serve(netLn) }()

	side := NewServer(Config{Registry: reg, AccessLog: alog, Statsz: func() any { return svc.Stats() }})
	sideLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sideDone := make(chan error, 1)
	go func() { sideDone <- side.Serve(sideLn) }()
	base := "http://" + sideLn.Addr().String()

	// Drive one remote session dry.
	client := dppnet.NewClient(netLn.Addr().String())
	rs, err := client.Open(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	batches := 0
	for {
		_, err := rs.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches++
	}
	rs.Close()
	if batches == 0 {
		t.Fatal("no batches streamed")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metricsText := get("/metrics")
	for _, want := range []string{
		fmt.Sprintf(`recd_sessions_opened_total{shard="0"} 1`),
		fmt.Sprintf(`recd_net_sessions_served_total{shard="0"} 1`),
		fmt.Sprintf(`recd_net_batches_sent_total{shard="0"} %d`, batches),
		fmt.Sprintf(`recd_batches_served_total{shard="0"} %d`, batches),
		`recd_accesslog_events_total{kind="open"} 1`,
		`recd_accesslog_events_total{kind="close"} 1`,
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q\n%s", want, metricsText)
		}
	}

	if hz := get("/healthz"); !strings.Contains(hz, `"status":"ok"`) {
		t.Errorf("/healthz = %q", hz)
	}
	var stats dpp.Stats
	if err := json.Unmarshal([]byte(get("/statsz")), &stats); err != nil {
		t.Errorf("/statsz not dpp.Stats JSON: %v", err)
	} else if stats.SessionsOpened != 1 || stats.BatchesServed != int64(batches) {
		t.Errorf("/statsz = %+v, want 1 session / %d batches", stats, batches)
	}
	var events []AccessEvent
	if err := json.Unmarshal([]byte(get("/accesslog?n=10")), &events); err != nil {
		t.Fatalf("/accesslog not JSON: %v", err)
	}
	if len(events) != 2 || events[0].Kind != "open" || events[1].Kind != "close" {
		t.Fatalf("accesslog = %+v, want [open close]", events)
	}
	if events[1].Detail != "eof" || events[1].Batches != int64(batches) {
		t.Errorf("close event = %+v, want eof with %d batches", events[1], batches)
	}
	// pprof answers on the private mux.
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index looks wrong: %.120s", idx)
	}

	// Graceful teardown: sidecar first (drains scrapes), then the data
	// plane, then the service — and nothing may linger.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := side.Shutdown(ctx); err != nil {
		t.Fatalf("sidecar shutdown: %v", err)
	}
	if err := <-sideDone; err != nil {
		t.Fatalf("sidecar Serve: %v", err)
	}
	if err := netSrv.Close(); err != nil {
		t.Fatalf("net server close: %v", err)
	}
	if err := <-netDone; err != nil {
		t.Fatalf("net Serve: %v", err)
	}
	svc.Close()
	http.DefaultClient.CloseIdleConnections()
	testutil.WaitForGoroutines(t, before)
}

// TestSidecarShutdownIdempotent pins that Shutdown is safe to call
// twice and before any request was served.
func TestSidecarShutdownIdempotent(t *testing.T) {
	before := runtime.NumGoroutine()
	side := NewServer(Config{Registry: NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- side.Serve(ln) }()
	ctx := context.Background()
	if err := side.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := side.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	testutil.WaitForGoroutines(t, before)
}
