package etl

import (
	"testing"
	"testing/quick"

	"repro/internal/datagen"
)

func randomStream(seed int64, sessions int) []datagen.Sample {
	schema, err := datagen.NewSchema([]datagen.FeatureSpec{
		{Key: "f", Class: datagen.UserFeature, ChangeProb: 0.3,
			MeanLen: 4, MaxLen: 8, Update: datagen.Resample, Cardinality: 1 << 20},
	}, 1)
	if err != nil {
		panic(err)
	}
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 6, Seed: seed,
	})
	return gen.GeneratePartition()
}

// TestPropertyClusterPreservesMultiset: clustering is a pure permutation —
// the multiset of request IDs is unchanged and ValidateClustered accepts
// the output.
func TestPropertyClusterPreservesMultiset(t *testing.T) {
	prop := func(seed int64, sessions uint8) bool {
		n := int(sessions%20) + 2
		stream := randomStream(seed, n)
		clustered := ClusterBySession(stream)
		if len(clustered) != len(stream) {
			return false
		}
		if err := ValidateClustered(stream, clustered); err != nil {
			return false
		}
		// Contiguity: every session appears in exactly one run.
		seen := map[int64]bool{}
		var cur int64 = -1
		for _, s := range clustered {
			if s.SessionID != cur {
				if seen[s.SessionID] {
					return false // session split into two runs
				}
				seen[s.SessionID] = true
				cur = s.SessionID
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyClusterSortsWithinSession: inside each session run,
// timestamps are non-decreasing.
func TestPropertyClusterSortsWithinSession(t *testing.T) {
	prop := func(seed int64) bool {
		clustered := ClusterBySession(randomStream(seed, 10))
		for i := 1; i < len(clustered); i++ {
			if clustered[i].SessionID == clustered[i-1].SessionID &&
				clustered[i].Timestamp < clustered[i-1].Timestamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPerSessionDownsampleKeepsSessionsWhole: per-session
// downsampling never splits a session — each session is fully kept or
// fully dropped.
func TestPropertyPerSessionDownsampleKeepsSessionsWhole(t *testing.T) {
	prop := func(seed int64, rateByte uint8) bool {
		rate := float64(rateByte%90+5) / 100 // 0.05..0.94
		stream := randomStream(seed, 15)
		kept := Downsample(stream, rate, PerSession, seed)

		counts := map[int64]int{}
		for _, s := range stream {
			counts[s.SessionID]++
		}
		keptCounts := map[int64]int{}
		for _, s := range kept {
			keptCounts[s.SessionID]++
		}
		for sid, k := range keptCounts {
			if k != counts[sid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyJoinInverseOfSplit: Join(SplitLogs(x)) == x for arbitrary
// streams.
func TestPropertyJoinInverseOfSplit(t *testing.T) {
	prop := func(seed int64) bool {
		stream := randomStream(seed, 8)
		feats, events := SplitLogs(stream)
		joined := Join(feats, events)
		if len(joined) != len(stream) {
			return false
		}
		for i := range joined {
			if joined[i].RequestID != stream[i].RequestID ||
				joined[i].Label != stream[i].Label ||
				joined[i].SessionID != stream[i].SessionID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDownsampleRateApproximatelyHonored: the kept fraction is
// within a loose band of the requested rate for per-sample downsampling.
func TestPropertyDownsampleRateApproximatelyHonored(t *testing.T) {
	stream := randomStream(42, 80)
	prop := func(seed int64, rateByte uint8) bool {
		rate := float64(rateByte%60+20) / 100 // 0.20..0.79
		kept := Downsample(stream, rate, PerSample, seed)
		got := float64(len(kept)) / float64(len(stream))
		return got > rate-0.15 && got < rate+0.15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
