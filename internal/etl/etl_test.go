package etl

import (
	"testing"

	"repro/internal/datagen"
)

func genPartition(t *testing.T, sessions int, seed int64) ([]datagen.Sample, *datagen.Schema) {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 1, UserElem: 4, Item: 2, Dense: 4, SeqLen: 30, Seed: 1,
	})
	g := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              sessions,
		MeanSamplesPerSession: 10,
		Seed:                  seed,
	})
	return g.GeneratePartition(), schema
}

func TestJoinRoundTrip(t *testing.T) {
	samples, _ := genPartition(t, 40, 3)
	feats, events := SplitLogs(samples)
	joined := Join(feats, events)
	if len(joined) != len(samples) {
		t.Fatalf("joined %d, want %d", len(joined), len(samples))
	}
	for i := range samples {
		if joined[i].RequestID != samples[i].RequestID || joined[i].Label != samples[i].Label {
			t.Fatalf("sample %d mismatch after join", i)
		}
	}
}

func TestJoinDropsUnmatchedFeatures(t *testing.T) {
	samples, _ := genPartition(t, 10, 4)
	feats, events := SplitLogs(samples)
	// Remove half the events: those impressions never resolved.
	events = events[:len(events)/2]
	joined := Join(feats, events)
	if len(joined) != len(events) {
		t.Fatalf("joined %d, want %d", len(joined), len(events))
	}
}

func TestClusterBySessionInvariants(t *testing.T) {
	samples, _ := genPartition(t, 200, 5)
	clustered := ClusterBySession(samples)
	if err := ValidateClustered(samples, clustered); err != nil {
		t.Fatalf("ValidateClustered: %v", err)
	}
	// Input must be untouched (still timestamp ordered).
	for i := 1; i < len(samples); i++ {
		if samples[i].Timestamp < samples[i-1].Timestamp {
			t.Fatal("ClusterBySession mutated its input")
		}
	}
}

// TestClusteringRestoresBatchSessionMean reproduces the §3 conclusion:
// clustering lifts the within-batch samples-per-session from ~1 back to the
// partition-level mean, enabling dedup within training batches.
func TestClusteringRestoresBatchSessionMean(t *testing.T) {
	samples, _ := genPartition(t, 3000, 6)
	before := datagen.BatchSessionMean(samples, 4096)
	clustered := ClusterBySession(samples)
	after := datagen.BatchSessionMean(clustered, 4096)
	partitionS := datagen.MeasuredS(samples)
	t.Logf("batch S: interleaved %.2f, clustered %.2f (partition %.2f)", before, after, partitionS)
	if before > 3 {
		t.Errorf("interleaved batch S = %.2f, want near 1", before)
	}
	if after < partitionS*0.8 {
		t.Errorf("clustered batch S = %.2f, want near partition S %.2f", after, partitionS)
	}
}

func TestValidateClusteredCatchesViolations(t *testing.T) {
	samples, _ := genPartition(t, 50, 7)
	clustered := ClusterBySession(samples)

	// Non-contiguous session: swap first and last samples.
	bad := append([]datagen.Sample(nil), clustered...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	if err := ValidateClustered(samples, bad); err == nil {
		t.Error("shuffled clustering accepted")
	}

	// Dropped sample.
	if err := ValidateClustered(samples, clustered[:len(clustered)-1]); err == nil {
		t.Error("truncated clustering accepted")
	}

	// Sample substitution (multiset change).
	bad2 := append([]datagen.Sample(nil), clustered...)
	bad2[0].RequestID = -12345
	if err := ValidateClustered(samples, bad2); err == nil {
		t.Error("substituted sample accepted")
	}
}

func TestDownsamplePerSampleShrinksS(t *testing.T) {
	samples, _ := genPartition(t, 500, 8)
	origS := datagen.MeasuredS(samples)
	down := Downsample(samples, 0.25, PerSample, 1)
	if len(down) == 0 || len(down) > len(samples)/2 {
		t.Fatalf("downsampled to %d of %d", len(down), len(samples))
	}
	dsS := datagen.MeasuredS(down)
	if dsS >= origS*0.6 {
		t.Errorf("per-sample downsampling S = %.2f, want well below %.2f", dsS, origS)
	}
}

// TestDownsamplePerSessionPreservesS verifies the §7 claim: per-session
// downsampling keeps S (and thus DedupeFactor) intact at the same data
// volume.
func TestDownsamplePerSessionPreservesS(t *testing.T) {
	samples, _ := genPartition(t, 500, 9)
	origS := datagen.MeasuredS(samples)
	down := Downsample(samples, 0.25, PerSession, 1)
	dsS := datagen.MeasuredS(down)
	if dsS < origS*0.7 {
		t.Errorf("per-session downsampling S = %.2f, want near %.2f", dsS, origS)
	}
	// Volume should still be roughly a quarter.
	frac := float64(len(down)) / float64(len(samples))
	if frac < 0.1 || frac > 0.45 {
		t.Errorf("kept fraction = %.2f, want ~0.25", frac)
	}
}

func TestDownsampleRateOneIsIdentity(t *testing.T) {
	samples, _ := genPartition(t, 20, 10)
	down := Downsample(samples, 1.0, PerSample, 1)
	if len(down) != len(samples) {
		t.Fatalf("rate 1 dropped samples: %d vs %d", len(down), len(samples))
	}
}

func TestDownsampleDeterministic(t *testing.T) {
	samples, _ := genPartition(t, 100, 11)
	a := Downsample(samples, 0.5, PerSession, 42)
	b := Downsample(samples, 0.5, PerSession, 42)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic downsample: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].RequestID != b[i].RequestID {
			t.Fatal("nondeterministic downsample ordering")
		}
	}
}

func TestHourlyPartitionsRetention(t *testing.T) {
	h := NewHourlyPartitions(3)
	for hour := int64(0); hour < 5; hour++ {
		h.Land(hour, []datagen.Sample{{SessionID: hour}})
	}
	hours := h.Hours()
	if len(hours) != 3 || hours[0] != 2 || hours[2] != 4 {
		t.Fatalf("retained hours = %v, want [2 3 4]", hours)
	}
	if _, ok := h.Partition(0); ok {
		t.Error("expired partition still present")
	}
	if p, ok := h.Partition(4); !ok || p[0].SessionID != 4 {
		t.Error("recent partition missing")
	}
	// Re-landing replaces without growing.
	h.Land(4, []datagen.Sample{{SessionID: 99}})
	if p, _ := h.Partition(4); p[0].SessionID != 99 {
		t.Error("re-land did not replace")
	}
	if len(h.Hours()) != 3 {
		t.Error("re-land changed retention count")
	}
}
