// Package etl implements the stream/batch processing stage of the pipeline
// (paper §2.1): joining raw feature logs with event logs to produce labeled
// training samples, landing them into time-partitioned tables, and — for
// RecD — clustering each partition by session ID and sorting by log
// timestamp (optimization O2) so that downstream readers can deduplicate a
// session's samples within a batch.
package etl

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/datagen"
)

// FeatureRecord is the raw feature snapshot an inference server logs for
// one request (features are logged at inference time to avoid data
// leakage, paper §2.1).
type FeatureRecord struct {
	RequestID int64
	SessionID int64
	UserID    int64
	Timestamp int64
	Sparse    [][]int64
	Dense     []float32
}

// EventRecord is the impression outcome logged by the user-facing service.
type EventRecord struct {
	RequestID int64
	Label     int8
}

// SplitLogs decomposes samples into the two raw log streams the join
// consumes; used to exercise the join path against generated data.
func SplitLogs(samples []datagen.Sample) ([]FeatureRecord, []EventRecord) {
	feats := make([]FeatureRecord, len(samples))
	events := make([]EventRecord, len(samples))
	for i, s := range samples {
		feats[i] = FeatureRecord{
			RequestID: s.RequestID,
			SessionID: s.SessionID,
			UserID:    s.UserID,
			Timestamp: s.Timestamp,
			Sparse:    s.Sparse,
			Dense:     s.Dense,
		}
		events[i] = EventRecord{RequestID: s.RequestID, Label: s.Label}
	}
	return feats, events
}

// Join hash-joins feature records with event records on request ID,
// producing labeled samples. Features without a matching event (impression
// never resolved) are dropped, mirroring the production inner join.
func Join(features []FeatureRecord, events []EventRecord) []datagen.Sample {
	byReq := make(map[int64]int8, len(events))
	for _, e := range events {
		byReq[e.RequestID] = e.Label
	}
	out := make([]datagen.Sample, 0, len(features))
	for _, f := range features {
		label, ok := byReq[f.RequestID]
		if !ok {
			continue
		}
		out = append(out, datagen.Sample{
			SessionID: f.SessionID,
			UserID:    f.UserID,
			RequestID: f.RequestID,
			Timestamp: f.Timestamp,
			Sparse:    f.Sparse,
			Dense:     f.Dense,
			Label:     label,
		})
	}
	return out
}

// ClusterBySession reorders a partition so that each session's samples are
// contiguous and timestamp-ordered within the session (the paper's CLUSTER
// BY session ID + SORT BY timestamp ETL job, §4.1). Sessions appear in
// order of their first timestamp so the output remains roughly
// time-ordered at session granularity. The input is not modified.
func ClusterBySession(samples []datagen.Sample) []datagen.Sample {
	out := append([]datagen.Sample(nil), samples...)
	first := map[int64]int64{}
	for _, s := range out {
		if t, ok := first[s.SessionID]; !ok || s.Timestamp < t {
			first[s.SessionID] = s.Timestamp
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		fa, fb := first[a.SessionID], first[b.SessionID]
		if fa != fb {
			return fa < fb
		}
		if a.SessionID != b.SessionID {
			return a.SessionID < b.SessionID
		}
		return a.Timestamp < b.Timestamp
	})
	return out
}

// ValidateClustered checks the clustering invariants: each session's
// samples are contiguous and internally timestamp-ordered, and the multiset
// of request IDs is unchanged from the input.
func ValidateClustered(original, clustered []datagen.Sample) error {
	if len(original) != len(clustered) {
		return fmt.Errorf("etl: clustered has %d samples, want %d", len(clustered), len(original))
	}
	counts := map[int64]int{}
	for _, s := range original {
		counts[s.RequestID]++
	}
	for _, s := range clustered {
		counts[s.RequestID]--
	}
	for req, c := range counts {
		if c != 0 {
			return fmt.Errorf("etl: request %d count imbalance %d", req, c)
		}
	}
	seen := map[int64]bool{}
	var cur int64 = -1 << 62
	var lastTS int64
	for i, s := range clustered {
		if s.SessionID != cur {
			if seen[s.SessionID] {
				return fmt.Errorf("etl: session %d not contiguous (sample %d)", s.SessionID, i)
			}
			seen[s.SessionID] = true
			cur = s.SessionID
			lastTS = s.Timestamp
			continue
		}
		if s.Timestamp < lastTS {
			return fmt.Errorf("etl: session %d not time ordered at sample %d", s.SessionID, i)
		}
		lastTS = s.Timestamp
	}
	return nil
}

// DownsamplePolicy selects the unit of downsampling.
type DownsamplePolicy int

const (
	// PerSample drops individual samples independently (the production
	// default the paper critiques in §7: it shrinks S).
	PerSample DownsamplePolicy = iota
	// PerSession drops whole sessions, preserving each kept session's S
	// and thereby the dedup opportunity (the paper's proposed improvement).
	PerSession
)

// Downsample keeps approximately rate (0..1] of the data under the given
// policy. Deterministic for a given seed.
func Downsample(samples []datagen.Sample, rate float64, policy DownsamplePolicy, seed int64) []datagen.Sample {
	if rate >= 1 {
		return append([]datagen.Sample(nil), samples...)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []datagen.Sample
	switch policy {
	case PerSample:
		for _, s := range samples {
			if rng.Float64() < rate {
				out = append(out, s)
			}
		}
	case PerSession:
		keep := map[int64]bool{}
		decided := map[int64]bool{}
		for _, s := range samples {
			if !decided[s.SessionID] {
				decided[s.SessionID] = true
				keep[s.SessionID] = rng.Float64() < rate
			}
			if keep[s.SessionID] {
				out = append(out, s)
			}
		}
	}
	return out
}

// HourlyPartitions manages the time-partitioned table lifecycle: new
// partitions land continuously and old ones are dropped to maintain
// freshness (paper §2.1).
type HourlyPartitions struct {
	retention int
	hours     []int64
	data      map[int64][]datagen.Sample
}

// NewHourlyPartitions creates a partition set retaining the most recent
// `retention` hours.
func NewHourlyPartitions(retention int) *HourlyPartitions {
	return &HourlyPartitions{retention: retention, data: map[int64][]datagen.Sample{}}
}

// Land stores a partition for the given hour, dropping the oldest if the
// retention bound is exceeded. Re-landing an hour replaces it.
func (h *HourlyPartitions) Land(hour int64, samples []datagen.Sample) {
	if _, ok := h.data[hour]; !ok {
		h.hours = append(h.hours, hour)
		sort.Slice(h.hours, func(i, j int) bool { return h.hours[i] < h.hours[j] })
	}
	h.data[hour] = samples
	for len(h.hours) > h.retention {
		old := h.hours[0]
		h.hours = h.hours[1:]
		delete(h.data, old)
	}
}

// Partition returns the samples landed for hour.
func (h *HourlyPartitions) Partition(hour int64) ([]datagen.Sample, bool) {
	s, ok := h.data[hour]
	return s, ok
}

// Hours lists the retained hours in ascending order.
func (h *HourlyPartitions) Hours() []int64 { return append([]int64(nil), h.hours...) }
