package comm

import (
	"testing"
	"time"
)

func TestZionEXShape(t *testing.T) {
	top := ZionEX(6)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumGPUs() != 48 {
		t.Fatalf("NumGPUs = %d want 48", top.NumGPUs())
	}
	if top.NodeOf(0) != 0 || top.NodeOf(7) != 0 || top.NodeOf(8) != 1 {
		t.Fatal("NodeOf wrong")
	}
	if !top.SameNode(0, 7) || top.SameNode(7, 8) {
		t.Fatal("SameNode wrong")
	}
}

func TestValidate(t *testing.T) {
	bad := []Topology{
		{},
		{Nodes: 1},
		{Nodes: 1, GPUsPerNode: 8},
		{Nodes: 1, GPUsPerNode: 8, NVLinkBandwidth: 1},
	}
	for i, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAllToAllByteAccounting(t *testing.T) {
	top := ZionEX(2) // 16 GPUs
	st, err := top.UniformAllToAll(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 16 ranks sends 1000B to 15 peers: 7 intra, 8 inter.
	if st.IntraBytes != 16*7*1000 {
		t.Fatalf("IntraBytes = %d want %d", st.IntraBytes, 16*7*1000)
	}
	if st.InterBytes != 16*8*1000 {
		t.Fatalf("InterBytes = %d want %d", st.InterBytes, 16*8*1000)
	}
	if st.Time <= 0 {
		t.Fatal("expected positive time")
	}
}

func TestAllToAllSelfSendFree(t *testing.T) {
	top := ZionEX(1)
	n := top.NumGPUs()
	send := make([][]int64, n)
	for g := range send {
		send[g] = make([]int64, n)
		send[g][g] = 1 << 30 // huge self-send must be ignored
	}
	st, err := top.AllToAll(send)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes() != 0 || st.Time != 0 {
		t.Fatalf("self-sends should be free: %+v", st)
	}
}

func TestAllToAllErrors(t *testing.T) {
	top := ZionEX(1)
	if _, err := top.AllToAll(make([][]int64, 3)); err == nil {
		t.Fatal("expected error for wrong matrix size")
	}
	n := top.NumGPUs()
	send := make([][]int64, n)
	for g := range send {
		send[g] = make([]int64, n)
	}
	send[0][1] = -5
	if _, err := top.AllToAll(send); err == nil {
		t.Fatal("expected error for negative bytes")
	}
	send[0] = send[0][:2]
	if _, err := top.AllToAll(send); err == nil {
		t.Fatal("expected error for short row")
	}
}

// TestHalvingBytesHalvesA2ATime is the mechanism behind the paper's Fig 8
// "RecD halves exposed A2A": when IKJTs halve SDD bytes, modelled A2A time
// drops near-proportionally (the α term keeps it from exactly halving).
func TestHalvingBytesHalvesA2ATime(t *testing.T) {
	top := ZionEX(6)
	big, err := top.UniformAllToAll(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	small, err := top.UniformAllToAll(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.Time) / float64(small.Time)
	if ratio < 1.8 || ratio > 2.05 {
		t.Fatalf("time ratio %.3f not ≈2 for halved bytes", ratio)
	}
}

func TestInterNodeDominates(t *testing.T) {
	// Same payload, single node vs multi node: the multi-node collective
	// must be slower because RoCE is far slower than NVLink — the reason
	// single-node training exposes less communication (paper §6.2).
	one, err := ZionEX(1).UniformAllToAll(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	six, err := ZionEX(6).UniformAllToAll(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if six.Time <= one.Time {
		t.Fatalf("multi-node A2A should be slower: %v vs %v", six.Time, one.Time)
	}
}

func TestAllReduce(t *testing.T) {
	top := ZionEX(2)
	st, err := top.AllReduce(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes() == 0 || st.Time == 0 {
		t.Fatalf("all-reduce accounting empty: %+v", st)
	}
	// Zero bytes and single GPU are free.
	st, err = top.AllReduce(0)
	if err != nil || st.Time != 0 {
		t.Fatalf("zero all-reduce: %+v, %v", st, err)
	}
	single := Topology{Nodes: 1, GPUsPerNode: 1, NVLinkBandwidth: 1e9, RoCEBandwidth: 1e9}
	st, err = single.AllReduce(1 << 20)
	if err != nil || st.Time != 0 {
		t.Fatalf("single-gpu all-reduce: %+v, %v", st, err)
	}
	if _, err := top.AllReduce(-1); err == nil {
		t.Fatal("expected error for negative bytes")
	}
}

func TestReduceScatterHalfOfAllReduce(t *testing.T) {
	top := ZionEX(2)
	ar, _ := top.AllReduce(1 << 20)
	rs, err := top.ReduceScatter(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalBytes() != ar.TotalBytes()/2 {
		t.Fatalf("reduce-scatter bytes %d want %d", rs.TotalBytes(), ar.TotalBytes()/2)
	}
	if rs.Time != ar.Time/2 {
		t.Fatalf("reduce-scatter time %v want %v", rs.Time, ar.Time/2)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{IntraBytes: 1, InterBytes: 2, Time: time.Millisecond}
	b := Stats{IntraBytes: 10, InterBytes: 20, Time: time.Second}
	a.Add(b)
	if a.IntraBytes != 11 || a.InterBytes != 22 || a.Time != time.Second+time.Millisecond {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.TotalBytes() != 33 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
}
