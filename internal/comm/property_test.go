package comm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyAllToAllConservation: the stats' byte totals equal the sum
// of the send matrix (excluding self-sends), split correctly by link
// class, for arbitrary matrices.
func TestPropertyAllToAllConservation(t *testing.T) {
	top := ZionEX(3) // 24 ranks
	n := top.NumGPUs()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		send := make([][]int64, n)
		var wantIntra, wantInter int64
		for g := range send {
			send[g] = make([]int64, n)
			for p := range send[g] {
				b := rng.Int63n(1 << 16)
				send[g][p] = b
				if p == g {
					continue
				}
				if top.SameNode(g, p) {
					wantIntra += b
				} else {
					wantInter += b
				}
			}
		}
		st, err := top.AllToAll(send)
		if err != nil {
			return false
		}
		return st.IntraBytes == wantIntra && st.InterBytes == wantInter
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTimeMonotoneInBytes: growing any rank's payload never makes
// the collective faster.
func TestPropertyTimeMonotoneInBytes(t *testing.T) {
	top := ZionEX(2)
	prop := func(seed int64, extra uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		base := rng.Int63n(1 << 18)
		small, err := top.UniformAllToAll(base)
		if err != nil {
			return false
		}
		big, err := top.UniformAllToAll(base + int64(extra))
		if err != nil {
			return false
		}
		return big.Time >= small.Time
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllReduceScalesLinearly: above the latency floor, doubling
// the buffer roughly doubles all-reduce time.
func TestPropertyAllReduceScalesLinearly(t *testing.T) {
	top := ZionEX(4)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bytes := (rng.Int63n(64) + 64) << 20 // 64MB..128MB, far above α
		one, err := top.AllReduce(bytes)
		if err != nil {
			return false
		}
		two, err := top.AllReduce(2 * bytes)
		if err != nil {
			return false
		}
		ratio := float64(two.Time) / float64(one.Time)
		return ratio > 1.8 && ratio < 2.2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
