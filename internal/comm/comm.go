// Package comm models the collective-communication substrate of a
// multi-GPU training cluster (paper §2.2): all-to-all for sparse data
// distribution and embedding exchange, all-reduce for dense gradients. It
// is an analytic α-β cost model over a two-level topology — NVLink within
// a node, a RoCE backend network across nodes — with exact per-GPU byte
// accounting. The numeric training computation itself is performed by the
// trainer package in-process; comm answers "how many bytes crossed which
// link and how long would that take", which is what the paper's A2A
// results (Fig 8) measure.
package comm

import (
	"fmt"
	"time"
)

// Topology describes the cluster interconnect.
type Topology struct {
	// Nodes is the number of training nodes.
	Nodes int
	// GPUsPerNode is the number of GPUs per node.
	GPUsPerNode int
	// NVLinkBandwidth is the per-GPU intra-node bandwidth in bytes/sec.
	NVLinkBandwidth float64
	// NVLinkLatency is the per-message intra-node latency (α term).
	NVLinkLatency time.Duration
	// RoCEBandwidth is the per-GPU NIC bandwidth in bytes/sec.
	RoCEBandwidth float64
	// RoCELatency is the per-message inter-node latency.
	RoCELatency time.Duration
}

// ZionEX returns the paper's trainer platform (§6.1): nodes of 8 A100s
// linked by NVLink (600 GB/s per GPU) with one 200 Gbps RoCE NIC per GPU
// on a dedicated backend network.
func ZionEX(nodes int) Topology {
	return Topology{
		Nodes:           nodes,
		GPUsPerNode:     8,
		NVLinkBandwidth: 600e9,
		NVLinkLatency:   1 * time.Microsecond,
		RoCEBandwidth:   25e9, // 200 Gbps
		RoCELatency:     2 * time.Microsecond,
	}
}

// Validate checks the topology is usable.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.GPUsPerNode <= 0 {
		return fmt.Errorf("comm: topology needs nodes and gpus, got %d×%d", t.Nodes, t.GPUsPerNode)
	}
	if t.NVLinkBandwidth <= 0 || t.RoCEBandwidth <= 0 {
		return fmt.Errorf("comm: topology needs positive bandwidths")
	}
	return nil
}

// NumGPUs is the world size.
func (t Topology) NumGPUs() int { return t.Nodes * t.GPUsPerNode }

// NodeOf returns the node index hosting GPU g.
func (t Topology) NodeOf(g int) int { return g / t.GPUsPerNode }

// SameNode reports whether two ranks share NVLink.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Stats describes one collective: bytes split by link class and the
// modelled completion time (the slowest rank's finish time, as collectives
// are synchronizing).
type Stats struct {
	IntraBytes int64 // bytes that crossed NVLink
	InterBytes int64 // bytes that crossed the RoCE backend
	Time       time.Duration
}

// Add accumulates o into s, serializing the time (collectives in one
// iteration run back-to-back).
func (s *Stats) Add(o Stats) {
	s.IntraBytes += o.IntraBytes
	s.InterBytes += o.InterBytes
	s.Time += o.Time
}

// TotalBytes is the sum across link classes.
func (s Stats) TotalBytes() int64 { return s.IntraBytes + s.InterBytes }

// AllToAll models a personalized all-to-all: send[g][p] is the bytes rank
// g sends to rank p. Self-sends are local copies and are not charged.
// Completion time is the slowest rank's max of (intra time, inter time),
// each modelled as α·messages + bytes/bandwidth.
func (t Topology) AllToAll(send [][]int64) (Stats, error) {
	n := t.NumGPUs()
	if len(send) != n {
		return Stats{}, fmt.Errorf("comm: all-to-all send matrix has %d rows, world is %d", len(send), n)
	}
	var st Stats
	var worst time.Duration
	for g := 0; g < n; g++ {
		if len(send[g]) != n {
			return Stats{}, fmt.Errorf("comm: all-to-all row %d has %d cols, world is %d", g, len(send[g]), n)
		}
		var intra, inter int64
		var intraMsgs, interMsgs int
		for p := 0; p < n; p++ {
			if p == g {
				continue
			}
			b := send[g][p]
			if b < 0 {
				return Stats{}, fmt.Errorf("comm: negative bytes %d from %d to %d", b, g, p)
			}
			if b == 0 {
				continue
			}
			if t.SameNode(g, p) {
				intra += b
				intraMsgs++
			} else {
				inter += b
				interMsgs++
			}
		}
		st.IntraBytes += intra
		st.InterBytes += inter
		intraTime := time.Duration(intraMsgs)*t.NVLinkLatency +
			time.Duration(float64(intra)/t.NVLinkBandwidth*float64(time.Second))
		interTime := time.Duration(interMsgs)*t.RoCELatency +
			time.Duration(float64(inter)/t.RoCEBandwidth*float64(time.Second))
		rank := intraTime
		if interTime > rank {
			rank = interTime
		}
		if rank > worst {
			worst = rank
		}
	}
	st.Time = worst
	return st, nil
}

// UniformAllToAll is the common case where every rank sends the same
// payload to every other rank (e.g. evenly sharded SDD): bytesPerPair is
// what one rank sends to one peer.
func (t Topology) UniformAllToAll(bytesPerPair int64) (Stats, error) {
	n := t.NumGPUs()
	send := make([][]int64, n)
	for g := range send {
		send[g] = make([]int64, n)
		for p := range send[g] {
			if p != g {
				send[g][p] = bytesPerPair
			}
		}
	}
	return t.AllToAll(send)
}

// AllReduce models a ring all-reduce of bytesPerGPU across the world: each
// rank moves 2·(n-1)/n of its buffer over its slowest link. For multi-node
// rings the bottleneck is the RoCE hop.
func (t Topology) AllReduce(bytesPerGPU int64) (Stats, error) {
	if bytesPerGPU < 0 {
		return Stats{}, fmt.Errorf("comm: negative all-reduce bytes %d", bytesPerGPU)
	}
	n := t.NumGPUs()
	if n == 1 || bytesPerGPU == 0 {
		return Stats{}, nil
	}
	moved := int64(float64(bytesPerGPU) * 2 * float64(n-1) / float64(n))
	bw := t.NVLinkBandwidth
	lat := t.NVLinkLatency
	var st Stats
	if t.Nodes > 1 {
		bw = t.RoCEBandwidth
		lat = t.RoCELatency
		// In a node-spanning ring, each rank's traffic crosses NVLink
		// except at node boundaries; attribute per-rank moved bytes by
		// the fraction of ring hops that cross nodes.
		interHops := int64(t.Nodes)
		totalHops := int64(n)
		st.InterBytes = moved * int64(n) * interHops / totalHops
		st.IntraBytes = moved*int64(n) - st.InterBytes
	} else {
		st.IntraBytes = moved * int64(n)
	}
	steps := 2 * (n - 1)
	st.Time = time.Duration(steps)*lat + time.Duration(float64(moved)/bw*float64(time.Second))
	return st, nil
}

// ReduceScatter models the first half of a ring all-reduce: (n-1)/n of the
// buffer moves, leaving each rank with one reduced shard.
func (t Topology) ReduceScatter(bytesPerGPU int64) (Stats, error) {
	st, err := t.AllReduce(bytesPerGPU)
	if err != nil {
		return Stats{}, err
	}
	st.IntraBytes /= 2
	st.InterBytes /= 2
	st.Time /= 2
	return st, nil
}
