// Attention demonstrates the paper's §5 "Deduplicated Pooling" on the
// workload it targets: long user-history sequence features pooled by
// transformer-style attention (the paper's RM1). Three history features
// updated synchronously form one grouped IKJT; the attention block then
// runs once per unique row instead of once per batch row (O7), and the
// example verifies the outputs are bit-identical while counting the
// compute saved.
//
// Run with: go run ./examples/attention
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/etl"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

func main() {
	const (
		seqLen = 64
		dim    = 16
		batch  = 256
	)

	// Three long user-history sequences that update together (e.g. the
	// item, category, and timestamp-bucket views of one interaction
	// history), as one sync group.
	var specs []datagen.FeatureSpec
	for _, key := range []string{"hist_items", "hist_categories", "hist_timebuckets"} {
		specs = append(specs, datagen.FeatureSpec{
			Key: key, Class: datagen.UserFeature, ChangeProb: 0.1,
			MeanLen: seqLen, MaxLen: seqLen * 2, Update: datagen.ShiftAppend,
			Cardinality: 1 << 30, SyncGroup: "history",
		})
	}
	schema, err := datagen.NewSchema(specs, 0)
	if err != nil {
		log.Fatal(err)
	}
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              80,
		MeanSamplesPerSession: 14,
		Seed:                  3,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	fmt.Printf("clustered %d samples of long user-history features (l=%d)\n\n", len(samples), seqLen)

	// Build one batch and its grouped IKJT.
	keys := schema.SparseKeys()
	tensors := make([]tensor.Jagged, len(keys))
	for fi := range keys {
		lists := make([][]tensor.Value, batch)
		for i := 0; i < batch; i++ {
			lists[i] = samples[i].Sparse[fi]
		}
		tensors[fi] = tensor.NewJagged(lists)
	}
	ik, err := tensor.DedupJagged(keys, tensors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grouped IKJT: batch %d -> %d unique rows (dedup factor %.2f)\n\n",
		ik.Batch(), ik.UniqueRows(), ik.MeasuredFactor())

	// One embedding table + attention block per feature.
	rng := rand.New(rand.NewSource(11))
	emb, err := trainer.NewEmbeddingBag(1<<14, dim, rng)
	if err != nil {
		log.Fatal(err)
	}
	attn := trainer.NewAttentionBlock(dim, rng)

	// Baseline: attention over every batch row of hist_items.
	full, _ := ik.Feature("hist_items")
	baseOut := make([][]float32, batch)
	var baseFLOPs float64
	for r := 0; r < batch; r++ {
		seq := emb.LookupSeq(full.Row(r))
		baseOut[r], _ = attn.Forward(seq)
		baseFLOPs += attn.FLOPsForSeq(seq.RowsN)
	}

	// RecD: attention over unique rows only, expanded by inverse lookup.
	dd, _ := ik.Deduped("hist_items")
	uniqueOut := make([][]float32, ik.UniqueRows())
	var recdFLOPs float64
	for u := 0; u < ik.UniqueRows(); u++ {
		seq := emb.LookupSeq(dd.Row(u))
		uniqueOut[u], _ = attn.Forward(seq)
		recdFLOPs += attn.FLOPsForSeq(seq.RowsN)
	}
	recdOut := make([][]float32, batch)
	for r, u := range ik.InverseLookup() {
		recdOut[r] = uniqueOut[u]
	}

	// The deduplicated path must be bit-exact.
	for r := 0; r < batch; r++ {
		for d := 0; d < dim; d++ {
			if baseOut[r][d] != recdOut[r][d] {
				log.Fatalf("row %d dim %d differs: %v vs %v", r, d, baseOut[r][d], recdOut[r][d])
			}
		}
	}
	fmt.Println("deduplicated attention output == full-batch output (bit-exact)")
	fmt.Printf("attention flops: baseline %.2e, deduplicated %.2e (%.2fx saved)\n\n",
		baseFLOPs, recdFLOPs, baseFLOPs/recdFLOPs)

	// End-to-end: the full DLRM with attention pooling over the grouped
	// features trains identically in both modes.
	cfg := trainer.Config{
		EmbDim: dim, DenseIn: 1,
		BottomHidden: []int{8}, TopHidden: []int{16},
		Features: []trainer.FeatureConfig{
			{Key: "hist_items", Pool: trainer.AttentionPool, TableRows: 1 << 12},
			{Key: "hist_categories", Pool: trainer.AttentionPool, TableRows: 1 << 12},
			{Key: "hist_timebuckets", Pool: trainer.SumPool, TableRows: 1 << 12},
		},
		Seed: 5,
	}
	mBase, err := trainer.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mRecD, err := trainer.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b := buildBatch(samples[:batch], schema, keys)
	lb, costB, err := mBase.TrainStep(b, trainer.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	lr, costR, err := mRecD.TrainStep(b, trainer.RecD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one DLRM training step: baseline loss %.6f, recd loss %.6f\n", lb, lr)
	fmt.Printf("pooling flops %.2e -> %.2e, SDD bytes %d -> %d, EMB lookups %d -> %d\n",
		costB.PoolFLOPs, costR.PoolFLOPs, costB.SDDBytes, costR.SDDBytes,
		costB.EmbLookups, costR.EmbLookups)
}

// buildBatch assembles a reader.Batch by hand (the reader tier normally
// does this; building it directly shows the wire format a trainer sees).
func buildBatch(samples []datagen.Sample, schema *datagen.Schema, group []string) *reader.Batch {
	b := &reader.Batch{Size: len(samples)}
	b.Dense = tensor.NewDense(len(samples), 1)
	b.Labels = make([]float32, len(samples))
	for i, s := range samples {
		b.Labels[i] = float32(s.Label)
	}
	tensors := make([]tensor.Jagged, len(group))
	for gi, key := range group {
		fi, _ := schema.FeatureIndex(key)
		lists := make([][]tensor.Value, len(samples))
		for i, s := range samples {
			lists[i] = s.Sparse[fi]
			b.OriginalSparseValues += len(s.Sparse[fi])
		}
		tensors[gi] = tensor.NewJagged(lists)
	}
	ik, err := tensor.DedupJagged(group, tensors)
	if err != nil {
		log.Fatal(err)
	}
	b.IKJTs = []*tensor.IKJT{ik}
	return b
}
