// Ecommerce models the paper's motivating scenario (§1): a shopping site
// serving recommendations throughout user sessions, where cart-sequence
// features (item ID and seller ID of the items in the cart) change only
// when the shopper adds an item. The two cart features update
// synchronously, making them a natural grouped IKJT (§4.2's e-commerce
// example). The example runs the storage → reader → training path twice —
// baseline and RecD — and prints the savings at each tier.
//
// Run with: go run ./examples/ecommerce
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/trainer"
)

func cartSchema() *datagen.Schema {
	specs := []datagen.FeatureSpec{
		// The cart: item IDs and seller IDs, updated together whenever the
		// shopper adds an item (shared SyncGroup), otherwise identical
		// across every impression of the session.
		{Key: "cart_item_ids", Class: datagen.UserFeature, ChangeProb: 0.08,
			MeanLen: 24, MaxLen: 48, Update: datagen.ShiftAppend,
			Cardinality: 1 << 30, SyncGroup: "cart"},
		{Key: "cart_seller_ids", Class: datagen.UserFeature, ChangeProb: 0.08,
			MeanLen: 24, MaxLen: 48, Update: datagen.ShiftAppend,
			Cardinality: 1 << 20, SyncGroup: "cart"},
		// Browsing history: last-N viewed items, changes most impressions.
		{Key: "viewed_item_ids", Class: datagen.UserFeature, ChangeProb: 0.6,
			MeanLen: 32, MaxLen: 64, Update: datagen.ShiftAppend,
			Cardinality: 1 << 30},
		// The candidate item being ranked: different per impression.
		{Key: "candidate_item", Class: datagen.ItemFeature, ChangeProb: 0.95,
			MeanLen: 1, MaxLen: 2, Update: datagen.Resample, Cardinality: 1 << 30},
		{Key: "candidate_category", Class: datagen.ItemFeature, ChangeProb: 0.9,
			MeanLen: 2, MaxLen: 4, Update: datagen.Resample, Cardinality: 1 << 16},
	}
	schema, err := datagen.NewSchema(specs, 6)
	if err != nil {
		log.Fatal(err)
	}
	return schema
}

func main() {
	schema := cartSchema()
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              300,
		MeanSamplesPerSession: 12, // impressions per shopping session
		Seed:                  7,
	})
	stream := gen.GeneratePartition() // inference-time ordered
	fmt.Printf("generated %d impressions from %d shopping sessions (S=%.1f)\n\n",
		len(stream), 300, datagen.MeasuredS(stream))

	run := func(name string, clustered bool, dedupGroups [][]string, batch int,
		mode trainer.Mode) (readStats reader.Stats, comp float64, loss float64) {

		samples := stream
		if clustered {
			samples = etl.ClusterBySession(stream)
		}
		store := lakefs.NewStore()
		catalog := lakefs.NewCatalog()
		pstats, err := dwrf.WritePartition(store, catalog, "cart", 0, schema, samples,
			dwrf.TableOptions{RowsPerFile: 4096, Writer: dwrf.WriterOptions{StripeRows: 128}})
		if err != nil {
			log.Fatal(err)
		}

		spec := reader.Spec{
			Table:               "cart",
			BatchSize:           batch,
			DedupSparseFeatures: dedupGroups,
		}
		inGroup := map[string]bool{}
		for _, g := range dedupGroups {
			for _, k := range g {
				inGroup[k] = true
			}
		}
		for _, f := range schema.Sparse {
			if !inGroup[f.Key] {
				spec.SparseFeatures = append(spec.SparseFeatures, f.Key)
			}
		}
		// Pull batches through a preprocessing-service session — the
		// DPP-style API a production training job would use.
		svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close()
		ctx := context.Background()
		sess, err := svc.Open(ctx, dpp.Spec{Spec: spec})
		if err != nil {
			log.Fatal(err)
		}
		var batches []*reader.Batch
		for {
			b, err := sess.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			batches = append(batches, b)
		}

		model, err := trainer.New(trainer.Config{
			EmbDim:       16,
			DenseIn:      schema.Dense,
			BottomHidden: []int{32},
			TopHidden:    []int{64},
			Features: []trainer.FeatureConfig{
				{Key: "cart_item_ids", Pool: trainer.SumPool, TableRows: 1 << 12},
				{Key: "cart_seller_ids", Pool: trainer.SumPool, TableRows: 1 << 10},
				{Key: "viewed_item_ids", Pool: trainer.MeanPool, TableRows: 1 << 12},
				{Key: "candidate_item", Pool: trainer.SumPool, TableRows: 1 << 12},
				{Key: "candidate_category", Pool: trainer.SumPool, TableRows: 1 << 8},
			},
			LR:   0.05,
			Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range batches {
			l, _, err := model.TrainStep(b, mode)
			if err != nil {
				log.Fatal(err)
			}
			loss = l
		}
		return sess.Stats().Reader, pstats.CompressionRatio(), loss
	}

	baseStats, baseComp, baseLoss := run("baseline", false, nil, 128, trainer.Baseline)
	dedupGroups := [][]string{{"cart_item_ids", "cart_seller_ids"}, {"viewed_item_ids"}}
	recdStats, recdComp, recdLoss := run("recd", true, dedupGroups, 128, trainer.RecD)

	fmt.Println("tier                    baseline        recd         gain")
	fmt.Printf("storage compression     %8.2fx   %8.2fx   %8.2fx\n",
		baseComp, recdComp, recdComp/baseComp)
	fmt.Printf("reader ingest bytes     %8.1fK   %8.1fK   %8.2fx\n",
		float64(baseStats.ReadBytes)/1024, float64(recdStats.ReadBytes)/1024,
		float64(baseStats.ReadBytes)/float64(recdStats.ReadBytes))
	fmt.Printf("reader->trainer bytes   %8.1fK   %8.1fK   %8.2fx\n",
		float64(baseStats.SentBytes)/1024, float64(recdStats.SentBytes)/1024,
		float64(baseStats.SentBytes)/float64(recdStats.SentBytes))
	fmt.Printf("final training loss     %8.4f   %8.4f   (same logical data)\n",
		baseLoss, recdLoss)
}
