// Pipeline runs the complete multi-tier training pipeline of Figure 1 —
// inference log generation → Scribe → ETL → DWRF tables on the blob
// store → reader tier → numeric DLRM training on a simulated multi-GPU
// cluster — twice: once as the pre-RecD baseline and once with the full
// O1–O7 suite. It prints a Fig 7-style scorecard plus the Fig 8 iteration
// breakdown for the paper's sequence-heavy model shape (RM1).
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	rm := core.RM1()
	rm.GenCfg.Sessions = 80 // keep the demo quick

	fmt.Printf("running %s end-to-end: baseline then RecD (O1-O7)...\n\n", rm.Name)

	start := time.Now()
	base, err := core.RunBaseline(rm)
	if err != nil {
		log.Fatal(err)
	}
	recd, err := core.RunRecD(rm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline runs finished in %v over %d samples (S=%.1f)\n\n",
		time.Since(start).Round(time.Millisecond), base.Samples, base.S)

	fmt.Println("-- dedup selection (the §7 heuristic) --")
	for _, d := range core.TopFactors(recd.Decisions, 6) {
		fmt.Printf("  %-16s factor %6.2f  dedup=%v (group %s)\n", d.Key, d.Factor, d.Dedup, d.Group)
	}
	fmt.Printf("  -> %d IKJT groups, mean factor %.2f, measured %.2f\n\n",
		len(recd.DedupGroups), core.MeanDedupFactor(recd.Decisions), recd.MeasuredDedupFactor)

	fmt.Println("-- end-to-end scorecard (baseline -> recd) --")
	fmt.Printf("  scribe compression   %6.2fx -> %6.2fx\n",
		base.Scribe.CompressionRatio(), recd.Scribe.CompressionRatio())
	fmt.Printf("  table compression    %6.2fx -> %6.2fx\n",
		base.Partition.CompressionRatio(), recd.Partition.CompressionRatio())
	fmt.Printf("  reader ingest        %6.1fK -> %6.1fK bytes\n",
		float64(base.Reader.ReadBytes)/1024, float64(recd.Reader.ReadBytes)/1024)
	fmt.Printf("  reader egress        %6.1fK -> %6.1fK bytes\n",
		float64(base.Reader.SentBytes)/1024, float64(recd.Reader.SentBytes)/1024)
	fmt.Printf("  trainer QPS          %6.0f  -> %6.0f   (%.2fx)\n",
		base.Iteration.QPS, recd.Iteration.QPS, recd.Iteration.QPS/base.Iteration.QPS)
	fmt.Printf("  peak GPU memory      %6.1f%% -> %6.1f%%\n",
		base.Iteration.PeakMemUtilization*100, recd.Iteration.PeakMemUtilization*100)
	// The two losses come from different batch sizes and row orders, so
	// they are not directly comparable; see examples/attention for the
	// bit-exact same-batch equivalence demonstration.
	fmt.Printf("  training loss        %6.4f -> %6.4f\n\n", base.FinalLoss, recd.FinalLoss)

	fmt.Println("-- iteration latency breakdown (Fig 8) --")
	printBreakdown := func(label string, r *core.Result) {
		bd := r.Iteration.Breakdown
		fmt.Printf("  %-9s EMB %8v  GEMM %8v  A2A %8v  Other %8v  total %8v\n",
			label, bd.EMB.Round(time.Microsecond), bd.GEMM.Round(time.Microsecond),
			bd.A2A.Round(time.Microsecond), bd.Other.Round(time.Microsecond),
			bd.Total().Round(time.Microsecond))
	}
	printBreakdown("baseline", base)
	printBreakdown("recd", recd)
}
