// Quickstart walks the paper's Figure 5 worked example: a batch of three
// rows with features a–d, where a stays a KJT, b is deduplicated into its
// own IKJT, and c,d form a grouped IKJT sharing one inverse lookup. It
// then shows the §4.2 analytic model, the §7 partial-IKJT extension, and
// finally the service-shaped ingestion API: a dpp.Service session that a
// training job pulls preprocessed batches from (the pull loop replaces
// the old Reader.Run push callback — see also the ExampleService godoc
// example in internal/dpp).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/tensor"
)

func main() {
	// The batch from Figure 5:
	//   row 0: a:[1,2]  b:[3,4,5]    c:[7,8]  d:[9]   label 1
	//   row 1: a:[1,2]  b:[4,5,6]    c:[7,8]  d:[9]   label 0
	//   row 2: a:[1,2]  b:[3,4,5]    c:[10]   d:[11]  label 1
	a := tensor.NewJagged([][]tensor.Value{{1, 2}, {1, 2}, {1, 2}})
	b := tensor.NewJagged([][]tensor.Value{{3, 4, 5}, {4, 5, 6}, {3, 4, 5}})
	c := tensor.NewJagged([][]tensor.Value{{7, 8}, {7, 8}, {10}})
	d := tensor.NewJagged([][]tensor.Value{{9}, {9}, {11}})

	// Feature a stays a plain KJT (the DataLoader's sparse_features).
	kjt := tensor.MustKJT([]string{"feature_a"}, []tensor.Jagged{a})
	fa, _ := kjt.Feature("feature_a")
	fmt.Println("KJT feature_a:")
	fmt.Printf("  values:  %v\n  offsets: %v\n\n", fa.Values, fa.Offsets)

	// Feature b deduplicates alone: rows 0 and 2 carry the same list, so
	// the IKJT stores it once and points both rows at it.
	ikB, err := tensor.DedupJagged([]string{"feature_b"}, []tensor.Jagged{b})
	if err != nil {
		log.Fatal(err)
	}
	db, _ := ikB.Deduped("feature_b")
	fmt.Println("IKJT feature_b (dedup_sparse_features: [[b]]):")
	fmt.Printf("  values:         %v\n  offsets:        %v\n", db.Values, db.Offsets)
	fmt.Printf("  inverse_lookup: %v\n", ikB.InverseLookup())
	fmt.Printf("  measured DedupeFactor: %.2f\n\n", ikB.MeasuredFactor())

	// Features c and d deduplicate as a group: both are updated
	// synchronously (rows 0 and 1 match for BOTH), so they share one
	// inverse lookup.
	ikCD, err := tensor.DedupJagged([]string{"feature_c", "feature_d"}, []tensor.Jagged{c, d})
	if err != nil {
		log.Fatal(err)
	}
	dc, _ := ikCD.Deduped("feature_c")
	dd, _ := ikCD.Deduped("feature_d")
	fmt.Println("grouped IKJT feature_c,d (dedup_sparse_features: [[c,d]]):")
	fmt.Printf("  c values/offsets: %v %v\n", dc.Values, dc.Offsets)
	fmt.Printf("  d values/offsets: %v %v\n", dd.Values, dd.Offsets)
	fmt.Printf("  shared inverse_lookup: %v\n\n", ikCD.InverseLookup())

	// Deduplicated compute (§5): element-wise sum across c and d runs on
	// unique rows only, then expands via the shared inverse lookup.
	sums := make([]tensor.Value, ikCD.UniqueRows())
	for u := 0; u < ikCD.UniqueRows(); u++ {
		for _, v := range dc.Row(u) {
			sums[u] += v
		}
		for _, v := range dd.Row(u) {
			sums[u] += v
		}
	}
	expanded := make([]tensor.Value, ikCD.Batch())
	for row, u := range ikCD.InverseLookup() {
		expanded[row] = sums[u]
	}
	fmt.Printf("deduplicated sum over c+d: unique %v -> expanded %v (paper: [24, 21] -> [24, 24, 21])\n\n",
		sums, expanded)

	// Losslessness: expanding the IKJT reproduces the original KJT.
	back := ikCD.ToKJT()
	origC, _ := back.Feature("feature_c")
	fmt.Printf("round trip exact: %v\n\n", origC.Equal(c))

	// The §4.2 analytic model: is feature b worth deduplicating at
	// production scale?
	m := tensor.FeatureModel{S: 16.5, B: 4096, D: 0.8, L: 100}
	fmt.Printf("analytic model (S=16.5, B=4096, d=0.8, l=100):\n")
	fmt.Printf("  DedupeLen    = %.0f values\n", m.DedupeLen())
	fmt.Printf("  DedupeFactor = %.2f (dedup if > %.1f: %v)\n\n",
		m.DedupeFactor(), tensor.DefaultDedupeThreshold, m.WorthDeduplicating())

	// Partial IKJTs (§7): feature b's rows are shifted windows, which
	// exact matching misses but shift-dedup captures.
	p := tensor.PartialDedup("feature_b", b)
	fmt.Println("partial IKJT for feature_b:")
	fmt.Printf("  values: %v\n  lookup: %v (paper: values [3,4,5,6], lookup [[0,3],[1,3],[0,3]])\n",
		p.Values, p.Lookup)
	fmt.Printf("  partial factor %.2f vs exact %.2f\n\n", p.Factor(), ikB.MeasuredFactor())

	// Finally, ingestion at service scale: land a small synthetic
	// partition and pull IKJT batches through a preprocessing-service
	// session — the API a training job uses instead of a push callback.
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 1, UserElem: 1, Item: 1, Dense: 2, SeqLen: 8, Seed: 1,
	})
	samples := etl.ClusterBySession(datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 30, MeanSamplesPerSession: 6, Seed: 2,
	}).GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "clicks", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		log.Fatal(err)
	}
	svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	sess, err := svc.Open(ctx, dpp.Spec{Spec: reader.Spec{
		Table:               "clicks",
		BatchSize:           32,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0"}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	batches, rows := 0, 0
	for {
		bt, err := sess.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		batches++
		rows += bt.Size
	}
	fmt.Printf("service session: pulled %d batches (%d rows, %d read bytes) from table \"clicks\"\n",
		batches, rows, sess.Stats().Reader.ReadBytes)
}
