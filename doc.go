// Package repro is a from-scratch Go reproduction of "RecD: Deduplication
// for End-to-End Deep Learning Recommendation Model Training
// Infrastructure" (Zhao et al., MLSys 2023).
//
// The public surface lives in the command-line tools (cmd/recd-bench,
// cmd/recd-datagen, cmd/recd-inspect) and the runnable examples
// (examples/...); the library packages are under internal/. See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// substitution table, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
package repro
