// Package repro is a from-scratch Go reproduction of "RecD: Deduplication
// for End-to-End Deep Learning Recommendation Model Training
// Infrastructure" (Zhao et al., MLSys 2023).
//
// The public surface lives in the command-line tools (cmd/recd-bench,
// cmd/recd-datagen, cmd/recd-inspect, cmd/recd-train, cmd/recd-serve)
// and the runnable examples (examples/...); the library packages are
// under internal/.
//
// Documentation map:
//   - docs/ARCHITECTURE.md — the layer diagram, the life of a batch from
//     lakefs bytes to Session.Next, the dppnet network service boundary
//     and its wire format, and where dedup, caching, and backpressure
//     each live.
//   - docs/OPERATIONS.md — flags and typical invocations for the five
//     cmd/ binaries (including the recd-serve / recd-train -connect
//     two-process pair), and how cmd/recd-bench (paper results) relates
//     to scripts/bench.sh (hot-path regression gate).
//   - benchmarks/README.md — the benchmark-regression workflow and the
//     recorded before/after history.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
//
// # Ingestion service architecture
//
// The paper's central artifact is a disaggregated Data PreProcessing
// service that many training jobs share; the reproduction mirrors that
// shape in three layers:
//
//   - storage.Backend / storage.Catalog are the blob-store and table
//     metadata interfaces (Get/ReadRange/Size/List/Exists and AllFiles).
//     lakefs.Store and lakefs.Catalog are the canonical in-memory
//     implementations with Tectonic/Hive-style IO accounting.
//   - reader.Reader executes one fill→convert→process scan over any
//     Backend. Reader.Run takes a context.Context and tears its pipeline
//     goroutines down promptly on cancellation; the context reaches all
//     the way into concurrent DWRF stripe decode
//     (dwrf.FileReader.ReadAllContext).
//   - dpp.Service hosts concurrent sessions. A training job submits a
//     dpp.Spec (the DataLoader spec plus Readers/Buffer execution shape)
//     and pulls preprocessed batches from the returned Session via
//     Next(ctx) — no push callbacks. Each session runs a shared ordered
//     work queue (reader.ScanQueue): fill workers claim file indices and
//     decode in parallel, an ordered merge reassembles the stream, and
//     the session buffers at most Readers×Buffer finished batches
//     (backpressure), aggregates deterministic per-session reader.Stats,
//     and dies cleanly on Close or job-context cancellation. Batch
//     streams are deterministic and worker-count independent: every
//     session is byte-identical to a serial Reader.Run scan at any pool
//     size and across any resize history (internal/dpp's chaos tests pin
//     this under -race across 51 seeded scale schedules).
//   - dpp.AutoScaler closes the paper's reader-scaling loop per session:
//     it watches the session's worker/consumer starvation counters
//     (SessionStats.Scheduler) and resizes the pool within
//     [MinReaders, MaxReaders] — enabled service-wide via
//     dpp.Config.AutoScale (recd-serve -autoscale), where the dppnet
//     credit window makes a slow remote trainer's pace observable.
//
// Sessions with equal-output specs can additionally share scans
// (dpp.Spec.ShareScans): the Service's dpp.ScanCache memoizes decoded,
// deduplicated, preprocessed batches per (file, reader.Spec.Fingerprint)
// with single-flight coalescing and byte-bounded LRU eviction, so N jobs
// over the same hour of data decode each DWRF file once instead of N
// times — with the batch stream pinned byte-identical to an unshared
// session's. storage.CachingBackend provides the raw-byte tier of the
// same idea for sessions whose specs differ.
//
// The service boundary is also a network boundary: dpp/dppnet serves
// sessions over a length-prefixed TCP protocol (cmd/recd-serve), and its
// client's remote sessions satisfy the same dpp.Stream pull contract as
// local ones, with batch streams pinned byte-identical to a local
// session across aligned, misaligned, and ShareScans specs. The wire
// decoders behind that boundary are fuzzed (FuzzDecodeBatch,
// FuzzSpecFingerprint) and the transport is fault-injection tested with
// goroutine-leak assertions — malformed or truncated frames fail
// cleanly, and neither side can strand sessions or goroutines when the
// other vanishes.
//
// # Hot paths
//
// RecD's premise is that reader-side dedup compute is cheap relative to
// the IO and preprocessing it saves (paper §6.3), so the dedup/convert
// kernels are engineered for throughput:
//
//   - tensor.Deduper performs grouped exact-match dedup with a
//     word-at-a-time multiplicative hash and an open-addressed int32
//     table that is reset — not reallocated — between batches. Outputs
//     never alias Deduper scratch, so batches can be retained while the
//     table is reused.
//   - tensor.JaggedIndexSelectInto expands IKJTs through a caller-reused
//     destination buffer, making steady-state expansion allocation-free.
//   - The wire codecs (tensor serialization, DWRF stripe encode/decode)
//     stage bytes through pooled scratch buffers and reuse flate
//     encoder/decoder state; DWRF files decode stripes concurrently.
//
// # Reader pipeline
//
// reader.Reader.Run executes the paper's fill→convert→process loop either
// serially (the reference path) or as a bounded-channel pipeline:
// Spec.FillAhead prefetches and decodes files ahead of conversion, and
// Spec.ConvertWorkers converts independent dedup groups of a batch
// concurrently. Both modes emit byte-identical batches with identical
// deterministic Stats counters; the equivalence is pinned under -race by
// the reader package's tests.
//
// # Benchmark regression harness
//
// scripts/bench.sh runs the hot-path benchmark set — including
// BenchmarkServiceSession, which pins the session iterator's overhead
// against the direct-Reader BenchmarkReaderTier, and
// BenchmarkRemoteSession, which gates the dppnet loopback overhead at
// ≤ 25% of the in-process session — and gates ns/op and allocs/op
// against the committed benchmarks/baseline.txt (tolerance
// BENCH_MAX_REGRESSION_PCT); scripts/bench-update.sh promotes fresh
// numbers. See benchmarks/README.md for the workflow and the recorded
// before/after history.
package repro
