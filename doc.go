// Package repro is a from-scratch Go reproduction of "RecD: Deduplication
// for End-to-End Deep Learning Recommendation Model Training
// Infrastructure" (Zhao et al., MLSys 2023).
//
// The public surface lives in the command-line tools (cmd/recd-bench,
// cmd/recd-datagen, cmd/recd-inspect) and the runnable examples
// (examples/...); the library packages are under internal/. See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// substitution table, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
//
// # Hot paths
//
// RecD's premise is that reader-side dedup compute is cheap relative to
// the IO and preprocessing it saves (paper §6.3), so the dedup/convert
// kernels are engineered for throughput:
//
//   - tensor.Deduper performs grouped exact-match dedup with a
//     word-at-a-time multiplicative hash and an open-addressed int32
//     table that is reset — not reallocated — between batches. Outputs
//     never alias Deduper scratch, so batches can be retained while the
//     table is reused.
//   - tensor.JaggedIndexSelectInto expands IKJTs through a caller-reused
//     destination buffer, making steady-state expansion allocation-free.
//   - The wire codecs (tensor serialization, DWRF stripe encode/decode)
//     stage bytes through pooled scratch buffers and reuse flate
//     encoder/decoder state; DWRF files decode stripes concurrently.
//
// # Reader pipeline
//
// reader.Reader.Run executes the paper's fill→convert→process loop either
// serially (the reference path) or as a bounded-channel pipeline:
// Spec.FillAhead prefetches and decodes files ahead of conversion, and
// Spec.ConvertWorkers converts independent dedup groups of a batch
// concurrently. Both modes emit byte-identical batches with identical
// deterministic Stats counters; the equivalence is pinned under -race by
// the reader package's tests.
//
// # Benchmark regression harness
//
// scripts/bench.sh runs the hot-path benchmark set and gates ns/op and
// allocs/op against the committed benchmarks/baseline.txt (tolerance
// BENCH_MAX_REGRESSION_PCT); scripts/bench-update.sh promotes fresh
// numbers. See benchmarks/README.md for the workflow and the recorded
// before/after history.
package repro
